// Crash-tolerant analysis server (paper §5.4, hardened).
//
// The paper dedicates one process to inter-process analysis; at cluster
// scale that process is itself a failure domain. This server wraps the
// sharded Collector + StreamingDetector with a durability discipline:
//
//  * write-ahead journal — every acknowledged delivery is appended to the
//    journal (runtime/journal.hpp) *before* it folds into streaming state,
//    under the same lock, so the journal's frame order IS the fold order;
//  * periodic checkpoints — every `checkpoint_every_batches` deliveries,
//    the complete detector snapshot + collector counters + per-rank
//    delivery watermarks are saved atomically (runtime/checkpoint.hpp);
//  * recovery — load the newest valid checkpoint (or start from zero state
//    if it is missing/corrupt), salvage the valid prefix of the journal,
//    and replay the suffix through the normal ingest path. Frames already
//    covered by the checkpoint are skipped by the watermark dedup, so
//    replay is idempotent — no batch is ever double-counted. After replay
//    the server checkpoints the recovered state and truncates the journal
//    (truncation is lazy: deferred to recovery, so between recoveries the
//    journal is a pure append-only redo log and checkpoints bound replay
//    *work*, not file size).
//
// Recovery equivalence: a run that crashes and recovers at any delivery
// boundary produces bit-identical matrices, variance events, and flag
// counters to an uninterrupted run. The journal replays the exact fold
// order; every checkpointed double round-trips byte-exact.
//
// Crash injection is deterministic: a crash plan (virtual-time points +
// seed) makes the server "die" at the first delivery at or after each
// point — the in-memory state (collector stores, detector state, journal
// user-space buffer) is destroyed, a seed-derived torn frame prefix is
// appended to the journal file to model a write cut mid-frame, and the
// server restarts through recover() before processing the triggering
// delivery. The transport (send side, wire, receive dedup) survives, as a
// network stack would.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/collector.hpp"
#include "runtime/journal.hpp"
#include "runtime/streaming_detector.hpp"
#include "runtime/transport.hpp"

namespace vsensor::rt {

struct ServerConfig {
  std::string journal_path = "analysis.journal";
  std::string checkpoint_path = "analysis.ckpt";
  /// Checkpoint after every N ingested batches (0 = only the checkpoints
  /// recovery itself takes).
  uint64_t checkpoint_every_batches = 0;
  JournalWriterConfig journal;
  /// Crash flight recorder dump path; "" derives "<journal_path>.flight".
  /// Written on crash and on torn-journal salvage, but only once event
  /// hooks are wired (set_event_hooks) — an unwired server never creates
  /// flight files.
  std::string flight_path;
  /// Events + health snapshots the flight ring retains (last N).
  size_t flight_capacity = 256;
  /// Storage chaos seam: every durable write this server makes (journal,
  /// checkpoint publish, flight dump) routes through this vfs. Null = the
  /// real filesystem. Non-owning; must outlive the server.
  io::Vfs* vfs = nullptr;
  /// Degraded-mode policy: a failed journal drain is retried this many
  /// times before the shard drops to degraded (non-durable) mode. Each
  /// retry is charged a doubling *virtual* backoff starting at
  /// io_retry_backoff — accounted in the io_backoff_seconds health gauge,
  /// never slept, so detection timing stays untouched.
  uint64_t io_retry_attempts = 3;
  double io_retry_backoff = 1e-4;
  /// While degraded, probe for re-arm (fresh checkpoint + truncated
  /// journal) every N dropped appends (0 = never re-arm automatically).
  uint64_t rearm_every_appends = 4;
};

/// What one recovery pass did, for reporting and tests.
struct RecoveryReport {
  bool checkpoint_loaded = false;
  std::string checkpoint_warning;  ///< why the checkpoint was rejected ("")
  std::string journal_warning;     ///< salvage description ("" = clean)
  uint64_t frames_replayed = 0;    ///< frames folded into recovered state
  uint64_t frames_skipped = 0;     ///< frames dropped by watermark dedup
  uint64_t records_replayed = 0;
  uint64_t torn_bytes = 0;         ///< journal tail bytes salvaged away
  double recovery_seconds = 0.0;   ///< wall time of the recover() call
};

class AnalysisServer final : public DeliverySink, public obs::HealthSource {
 public:
  /// `collector` and `detector` are owned by the caller and survive the
  /// simulated crash as objects — crash() resets their state in place, so
  /// external wiring (the collector's attached sink, references held by
  /// the workload) stays valid across crash/recover cycles. The detector
  /// must be attached as the collector's sink by the caller.
  AnalysisServer(ServerConfig cfg, Collector* collector,
                 StreamingDetector* detector);
  ~AnalysisServer();

  AnalysisServer(const AnalysisServer&) = delete;
  AnalysisServer& operator=(const AnalysisServer&) = delete;

  /// Deterministic crash plan: at the first delivery whose virtual time is
  /// >= times[i], the server crashes and recovers before processing it.
  /// `seed` derives the torn journal tail appended at each crash. Call
  /// before deliveries start.
  void set_crash_plan(std::vector<double> times, uint64_t seed);

  /// Transport delivery path: maybe crash/recover per the plan, then
  /// journal-append and fold under one lock (journal order = fold order).
  void on_delivery(int rank, uint64_t seq,
                   std::span<const SliceRecord> batch, double now) override;

  /// Journal a stale-rank mark and forward it to the detector, so the
  /// exclusion survives a crash that happens before the next checkpoint.
  /// `now` (when known) stamps the sweep's virtual time onto the emitted
  /// StaleRank event.
  void mark_stale(int rank, double now = -1.0);

  /// Journal an elastic revival (rank rejoined after a stale verdict) and
  /// forward it to the detector, so a crash-recovered server replays the
  /// exact stale→live transition order the live run folded.
  void mark_live(int rank, double now = -1.0);

  /// Journal a peer shard's (sensor, group) standard minimum and min-fold
  /// it into the detector's board, under the same lock as deliveries —
  /// journal order stays fold order, so shard recovery replays the exact
  /// interleaving of batches and peer updates that produced the flags.
  void apply_standard(int sensor_id, int group, double value);

  /// Snapshot the complete server state to the checkpoint file (atomic).
  void checkpoint();

  /// Restore from the newest valid checkpoint + journal suffix replay.
  /// Normally invoked internally by the crash path; exposed for tests and
  /// for restarting a server over existing on-disk state.
  RecoveryReport recover();

  /// Simulate the process dying right now: discard the journal's
  /// user-space buffer, append a torn frame prefix derived from the crash
  /// seed, and destroy all in-memory analysis state. recover() brings the
  /// server back.
  void crash();

  uint64_t crashes() const;
  uint64_t delivered_batches() const;
  /// Live deliveries ignored because their seq was already covered by a
  /// watermark (transport dedup failed upstream); expected to stay 0.
  uint64_t duplicate_deliveries() const;

  /// Degraded (non-durable) mode: journal writes exhausted their retries,
  /// so frames are dropped-and-counted while ingest and detection continue
  /// unchanged. A fresh checkpoint that lands re-arms durability. The flag
  /// deliberately survives a crash: recovering while degraded means the
  /// dropped frames are unrecoverable — that recovery is counted lossy and
  /// flagged on its Recovery event, never silent.
  bool degraded() const;
  uint64_t degraded_entries() const;
  uint64_t rearms() const;
  uint64_t lossy_recoveries() const;
  /// Bytes of acknowledged appends that will never be durable: the buffer
  /// dropped at degraded entry plus every frame dropped while degraded.
  uint64_t dropped_journal_bytes() const;
  /// Failed durable-write operations (journal + checkpoint + flight),
  /// accumulated across journal writer generations.
  uint64_t io_errors() const;
  uint64_t io_retries() const;
  uint64_t lost_journal_bytes() const;
  uint64_t checkpoint_failures() const;
  uint64_t orphan_tmps_removed() const;
  uint64_t flight_dump_failures() const;
  const std::vector<RecoveryReport>& recoveries() const { return reports_; }
  const ServerConfig& config() const { return cfg_; }
  const JournalWriter* journal() const { return journal_.get(); }

  /// Health plane (opt-in). Wiring event hooks engages the server's own
  /// flight recorder: the detector's flag/stale events and the server's
  /// crash/recovery/salvage/checkpoint events tee into a bounded ring that
  /// is dumped to flight_path() on crash or torn-journal salvage. The
  /// hooks' shard index attributes everything this server emits.
  void set_event_hooks(obs::EventHooks hooks);
  /// Provenance stamped into flight dumps (optional).
  void set_run_identity(obs::RunIdentity id) { identity_ = std::move(id); }
  /// Where flight dumps land (cfg.flight_path or "<journal>.flight").
  std::string flight_path() const;
  const obs::FlightRecorder& flight() const { return flight_; }
  obs::FlightRecorder& flight() { return flight_; }

  /// Health plane: durability gauges (journal bytes/frames/commits, bytes
  /// per append p50/p99, checkpoint age in virtual seconds, crash/recovery
  /// counts) plus the collector's and detector's own gauges under
  /// "collector." / "detector." sub-prefixes.
  void sample_health(double now, obs::HealthRecorder& rec) const override;

 private:
  void crash_locked();
  RecoveryReport recover_locked();
  void checkpoint_locked();
  ServerCheckpoint build_checkpoint_locked() const;
  void append_frame_locked(const JournalFrame& frame);
  void dump_flight_locked();
  /// Fold the dying writer's error/loss counters into the server-level
  /// bases (the counters die with the writer otherwise), then destroy it.
  void retire_journal_locked();
  void enter_degraded_locked(std::string why);
  void maybe_rearm_locked();
  uint64_t io_errors_locked() const;
  uint64_t lost_journal_bytes_locked() const;

  ServerConfig cfg_;
  Collector* collector_;
  StreamingDetector* detector_;

  mutable std::mutex mu_;
  std::unique_ptr<JournalWriter> journal_;
  std::vector<SeqTracker> watermarks_;  ///< per-rank replay dedup state
  std::vector<double> crash_times_;     ///< ascending virtual-time points
  size_t next_crash_ = 0;
  uint64_t crash_seed_ = 0;
  uint64_t crashes_ = 0;
  uint64_t delivered_batches_ = 0;
  uint64_t duplicate_deliveries_ = 0;
  uint64_t batches_since_checkpoint_ = 0;
  std::vector<RecoveryReport> reports_;

  // Degraded-mode state machine (durable → retrying → degraded → re-armed;
  // see docs/recovery.md). degraded_appends_ counts drops since entering
  // degraded mode, pacing the re-arm probes.
  bool degraded_ = false;
  uint64_t degraded_entries_ = 0;
  uint64_t degraded_appends_ = 0;
  uint64_t dropped_journal_bytes_ = 0;
  uint64_t io_retries_ = 0;
  double io_backoff_seconds_ = 0.0;
  uint64_t rearms_ = 0;
  uint64_t lossy_recoveries_ = 0;
  uint64_t checkpoint_failures_ = 0;
  uint64_t orphan_tmps_removed_ = 0;
  uint64_t flight_dump_failures_ = 0;
  /// Counters inherited from retired journal writers (crash/recover cycles
  /// destroy the writer object together with its tallies).
  uint64_t journal_io_errors_base_ = 0;
  uint64_t journal_lost_bytes_base_ = 0;

  // Health plane. last_now_ is the virtual time of the newest delivery —
  // the clock crash/checkpoint events are stamped with (a crash fires at a
  // delivery boundary, so the triggering delivery's time is the crash
  // time). checkpoint_t_ is the virtual time of the last checkpoint (< 0 =
  // never), so checkpoint age stays a pure virtual-time quantity.
  obs::EventHooks hooks_;
  bool flight_wired_ = false;
  obs::FlightRecorder flight_;
  std::optional<obs::RunIdentity> identity_;
  double last_now_ = -1.0;
  double checkpoint_t_ = -1.0;
  uint64_t checkpoints_saved_ = 0;
  /// Bytes appended to the journal per append call — a deterministic
  /// stand-in for append latency (wall time would break snapshot
  /// bit-reproducibility).
  obs::LogHistogram append_bytes_hist_{
      obs::LogHistogram::Config{1.0, 2.0, 48}};
};

}  // namespace vsensor::rt
