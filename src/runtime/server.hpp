// Crash-tolerant analysis server (paper §5.4, hardened).
//
// The paper dedicates one process to inter-process analysis; at cluster
// scale that process is itself a failure domain. This server wraps the
// sharded Collector + StreamingDetector with a durability discipline:
//
//  * write-ahead journal — every acknowledged delivery is appended to the
//    journal (runtime/journal.hpp) *before* it folds into streaming state,
//    under the same lock, so the journal's frame order IS the fold order;
//  * periodic checkpoints — every `checkpoint_every_batches` deliveries,
//    the complete detector snapshot + collector counters + per-rank
//    delivery watermarks are saved atomically (runtime/checkpoint.hpp);
//  * recovery — load the newest valid checkpoint (or start from zero state
//    if it is missing/corrupt), salvage the valid prefix of the journal,
//    and replay the suffix through the normal ingest path. Frames already
//    covered by the checkpoint are skipped by the watermark dedup, so
//    replay is idempotent — no batch is ever double-counted. After replay
//    the server checkpoints the recovered state and truncates the journal
//    (truncation is lazy: deferred to recovery, so between recoveries the
//    journal is a pure append-only redo log and checkpoints bound replay
//    *work*, not file size).
//
// Recovery equivalence: a run that crashes and recovers at any delivery
// boundary produces bit-identical matrices, variance events, and flag
// counters to an uninterrupted run. The journal replays the exact fold
// order; every checkpointed double round-trips byte-exact.
//
// Crash injection is deterministic: a crash plan (virtual-time points +
// seed) makes the server "die" at the first delivery at or after each
// point — the in-memory state (collector stores, detector state, journal
// user-space buffer) is destroyed, a seed-derived torn frame prefix is
// appended to the journal file to model a write cut mid-frame, and the
// server restarts through recover() before processing the triggering
// delivery. The transport (send side, wire, receive dedup) survives, as a
// network stack would.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/checkpoint.hpp"
#include "runtime/collector.hpp"
#include "runtime/journal.hpp"
#include "runtime/streaming_detector.hpp"
#include "runtime/transport.hpp"

namespace vsensor::rt {

struct ServerConfig {
  std::string journal_path = "analysis.journal";
  std::string checkpoint_path = "analysis.ckpt";
  /// Checkpoint after every N ingested batches (0 = only the checkpoints
  /// recovery itself takes).
  uint64_t checkpoint_every_batches = 0;
  JournalWriterConfig journal;
};

/// What one recovery pass did, for reporting and tests.
struct RecoveryReport {
  bool checkpoint_loaded = false;
  std::string checkpoint_warning;  ///< why the checkpoint was rejected ("")
  std::string journal_warning;     ///< salvage description ("" = clean)
  uint64_t frames_replayed = 0;    ///< frames folded into recovered state
  uint64_t frames_skipped = 0;     ///< frames dropped by watermark dedup
  uint64_t records_replayed = 0;
  uint64_t torn_bytes = 0;         ///< journal tail bytes salvaged away
  double recovery_seconds = 0.0;   ///< wall time of the recover() call
};

class AnalysisServer final : public DeliverySink {
 public:
  /// `collector` and `detector` are owned by the caller and survive the
  /// simulated crash as objects — crash() resets their state in place, so
  /// external wiring (the collector's attached sink, references held by
  /// the workload) stays valid across crash/recover cycles. The detector
  /// must be attached as the collector's sink by the caller.
  AnalysisServer(ServerConfig cfg, Collector* collector,
                 StreamingDetector* detector);
  ~AnalysisServer();

  AnalysisServer(const AnalysisServer&) = delete;
  AnalysisServer& operator=(const AnalysisServer&) = delete;

  /// Deterministic crash plan: at the first delivery whose virtual time is
  /// >= times[i], the server crashes and recovers before processing it.
  /// `seed` derives the torn journal tail appended at each crash. Call
  /// before deliveries start.
  void set_crash_plan(std::vector<double> times, uint64_t seed);

  /// Transport delivery path: maybe crash/recover per the plan, then
  /// journal-append and fold under one lock (journal order = fold order).
  void on_delivery(int rank, uint64_t seq,
                   std::span<const SliceRecord> batch, double now) override;

  /// Journal a stale-rank mark and forward it to the detector, so the
  /// exclusion survives a crash that happens before the next checkpoint.
  void mark_stale(int rank);

  /// Journal a peer shard's (sensor, group) standard minimum and min-fold
  /// it into the detector's board, under the same lock as deliveries —
  /// journal order stays fold order, so shard recovery replays the exact
  /// interleaving of batches and peer updates that produced the flags.
  void apply_standard(int sensor_id, int group, double value);

  /// Snapshot the complete server state to the checkpoint file (atomic).
  void checkpoint();

  /// Restore from the newest valid checkpoint + journal suffix replay.
  /// Normally invoked internally by the crash path; exposed for tests and
  /// for restarting a server over existing on-disk state.
  RecoveryReport recover();

  /// Simulate the process dying right now: discard the journal's
  /// user-space buffer, append a torn frame prefix derived from the crash
  /// seed, and destroy all in-memory analysis state. recover() brings the
  /// server back.
  void crash();

  uint64_t crashes() const;
  uint64_t delivered_batches() const;
  /// Live deliveries ignored because their seq was already covered by a
  /// watermark (transport dedup failed upstream); expected to stay 0.
  uint64_t duplicate_deliveries() const;
  const std::vector<RecoveryReport>& recoveries() const { return reports_; }
  const ServerConfig& config() const { return cfg_; }
  const JournalWriter* journal() const { return journal_.get(); }

 private:
  void crash_locked();
  RecoveryReport recover_locked();
  void checkpoint_locked();
  ServerCheckpoint build_checkpoint_locked() const;

  ServerConfig cfg_;
  Collector* collector_;
  StreamingDetector* detector_;

  mutable std::mutex mu_;
  std::unique_ptr<JournalWriter> journal_;
  std::vector<SeqTracker> watermarks_;  ///< per-rank replay dedup state
  std::vector<double> crash_times_;     ///< ascending virtual-time points
  size_t next_crash_ = 0;
  uint64_t crash_seed_ = 0;
  uint64_t crashes_ = 0;
  uint64_t delivered_batches_ = 0;
  uint64_t duplicate_deliveries_ = 0;
  uint64_t batches_since_checkpoint_ = 0;
  std::vector<RecoveryReport> reports_;
};

}  // namespace vsensor::rt
