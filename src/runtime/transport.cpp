#include "runtime/transport.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace vsensor::rt {

#if VSENSOR_OBS
namespace {
struct TransportInstruments {
  obs::Counter& batches;
  obs::Counter& retries;
  obs::Counter& lost;
  obs::Counter& duplicates;
  obs::Counter& delayed;
  obs::Counter& stale;
  obs::Gauge& backoff_seconds;

  static TransportInstruments& get() {
    auto& reg = obs::MetricsRegistry::global();
    static TransportInstruments inst{reg.counter("transport.batches_shipped"),
                                     reg.counter("transport.retries"),
                                     reg.counter("transport.batches_lost"),
                                     reg.counter("transport.duplicates_suppressed"),
                                     reg.counter("transport.delayed_batches"),
                                     reg.counter("transport.stale_ranks_reported"),
                                     reg.gauge("transport.backoff_seconds")};
    return inst;
  }
};
}  // namespace
#endif

bool SeqTracker::insert(uint64_t seq) {
  // Generation floor: the first delivery of a new incarnation advances the
  // watermark past everything a superseded incarnation could have shipped,
  // so a rejoined rank's fresh seq 0 (wire value: generation<<48) is never
  // mistaken for a duplicate of pre-leave history, and an old incarnation's
  // straggler landing after the rejoin reads as the duplicate it is.
  // Generation 0 has floor 0, so pre-elastic behavior is unchanged.
  const uint64_t floor = seq_generation(seq) << kSeqGenShift;
  if (floor > contiguous) {
    ahead.erase(ahead.begin(), ahead.lower_bound(floor));
    contiguous = floor;
  }
  if (seq < contiguous) return false;
  if (!ahead.insert(seq).second) return false;
  while (!ahead.empty() && *ahead.begin() == contiguous) {
    ahead.erase(ahead.begin());
    ++contiguous;
  }
  return true;
}

BatchTransport::BatchTransport(Collector* collector, int ranks,
                               TransportConfig cfg,
                               const TransportFaultModel* faults)
    : collector_(collector), cfg_(cfg), faults_(faults) {
  VS_CHECK_MSG(ranks > 0, "transport needs at least one rank channel");
  VS_CHECK_MSG(cfg_.max_attempts > 0, "need at least one delivery attempt");
  VS_CHECK_MSG(cfg_.retry_backoff >= 0.0, "retry backoff must be non-negative");
  VS_CHECK_MSG(cfg_.stale_after > 0.0, "stale threshold must be positive");
  channels_.resize(static_cast<size_t>(ranks));
  if (cfg_.channel_ring_capacity > 0) {
    rings_.reserve(static_cast<size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      rings_.push_back(std::make_unique<RingChannel>(cfg_.channel_ring_capacity));
    }
  }
}

BatchTransport::BatchTransport(DeliverySink* sink, int ranks,
                               TransportConfig cfg,
                               const TransportFaultModel* faults)
    : collector_(nullptr), sink_(sink), cfg_(cfg), faults_(faults) {
  VS_CHECK_MSG(sink != nullptr, "transport needs a delivery sink");
  VS_CHECK_MSG(ranks > 0, "transport needs at least one rank channel");
  VS_CHECK_MSG(cfg_.max_attempts > 0, "need at least one delivery attempt");
  VS_CHECK_MSG(cfg_.retry_backoff >= 0.0, "retry backoff must be non-negative");
  VS_CHECK_MSG(cfg_.stale_after > 0.0, "stale threshold must be positive");
  channels_.resize(static_cast<size_t>(ranks));
  if (cfg_.channel_ring_capacity > 0) {
    rings_.reserve(static_cast<size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      rings_.push_back(std::make_unique<RingChannel>(cfg_.channel_ring_capacity));
    }
  }
}

BatchTransport::~BatchTransport() { drain(); }

void BatchTransport::deliver(int rank, uint64_t seq,
                             std::span<const SliceRecord> batch, double now) {
  // The health sampler rides the delivery clock: every unique arrival is a
  // chance for virtual time to cross the next sampling boundary. Called
  // here — never under mu_ — because sampling re-enters sample_health().
  if (sampler_ != nullptr) sampler_->maybe_sample(now);
  if (sink_ != nullptr) {
    sink_->on_delivery(rank, seq, batch, now);
  } else if (collector_ != nullptr) {
    collector_->ingest(batch);
  }
}

void BatchTransport::arrive(int rank, uint64_t seq,
                            std::span<const SliceRecord> batch, double now,
                            std::vector<DelayedBatch>& ready) {
  // One physical delivery reaching the server. Each arrival releases held
  // (delayed) batches whose countdown expires, and a released batch is an
  // arrival itself, so process a queue of arrival events.
  std::vector<DelayedBatch> queue;
  queue.push_back(
      DelayedBatch{rank, seq, now, 0, {batch.begin(), batch.end()}});
  while (!queue.empty()) {
    DelayedBatch ev = std::move(queue.back());
    queue.pop_back();
    Channel& ch = channels_[static_cast<size_t>(ev.rank)];
    ch.stats.wire_bytes += ev.records.size() * kRecordWireBytes;
    if (!ch.seen.insert(ev.seq)) {
      ch.stats.duplicates_suppressed += 1;
      VS_OBS_ONLY(
          if (obs::enabled()) TransportInstruments::get().duplicates.add();)
    } else {
      ch.stats.batches_delivered += 1;
      ch.stats.records_delivered += ev.records.size();
      ch.stats.last_delivery_time = std::max(ch.stats.last_delivery_time, ev.now);
      ready.push_back(std::move(ev));
    }
    for (auto it = delayed_.begin(); it != delayed_.end();) {
      if (--(it->remaining) <= 0) {
        queue.push_back(std::move(*it));
        it = delayed_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

bool BatchTransport::ship(int rank, std::span<const SliceRecord> batch,
                          double now) {
  VS_CHECK_MSG(rank >= 0 && static_cast<size_t>(rank) < channels_.size(),
               "ship from unknown rank");
  if (batch.empty()) return true;
  if (!rings_.empty()) {
    return ship_enqueue(rank, {batch.begin(), batch.end()}, now);
  }
  return ship_sync(rank, batch, now);
}

bool BatchTransport::ship(int rank, const RecordBatch& batch, double now) {
  VS_CHECK_MSG(rank >= 0 && static_cast<size_t>(rank) < channels_.size(),
               "ship from unknown rank");
  if (batch.empty()) return true;
  // One gather from the staged columns to the AoS wire form, at the
  // transport boundary; the ring path adopts the vector without copying.
  std::vector<SliceRecord> aos = batch.to_aos();
  if (!rings_.empty()) return ship_enqueue(rank, std::move(aos), now);
  return ship_sync(rank, aos, now);
}

bool BatchTransport::ship_enqueue(int rank, std::vector<SliceRecord>&& records,
                                  double now) {
  RingChannel& rc = *rings_[static_cast<size_t>(rank)];
  const size_t n = records.size();
  if (!rc.ring.try_push(PendingShip{now, std::move(records)})) {
    // Backpressure: the consumer fell behind by a full ring. Refuse the
    // batch and account it so enqueued == delivered + lost + ring-dropped
    // stays an invariant the tests can assert.
    rc.dropped_batches.fetch_add(1, std::memory_order_relaxed);
    rc.dropped_records.fetch_add(n, std::memory_order_relaxed);
    VS_OBS_ONLY(if (obs::enabled()) TransportInstruments::get().lost.add();)
    if (hooks_) {
      obs::Event ev;
      ev.kind = obs::EventKind::RingOverflow;
      ev.t = now;
      ev.rank = rank;
      ev.count = n;
      hooks_.emit(std::move(ev));
    }
    return false;
  }
  // Producer-side high-water mark: how deep this ring has ever been.
  const auto depth = static_cast<uint64_t>(rc.ring.size_approx());
  uint64_t hw = rc.high_water.load(std::memory_order_relaxed);
  while (hw < depth && !rc.high_water.compare_exchange_weak(
                           hw, depth, std::memory_order_relaxed)) {
  }
  return true;
}

size_t BatchTransport::pump() {
  if (rings_.empty()) return 0;
  // try_lock instead of lock: a pump racing another pump (or a drain) can
  // return immediately — the in-flight consumer's pop loop keeps running
  // until the rings it is on are empty, and end-of-run drains happen after
  // producers quiesce, so nothing is left stranded.
  std::unique_lock<std::mutex> lock(pump_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return 0;
  size_t pumped = 0;
  for (size_t r = 0; r < rings_.size(); ++r) {
    RingChannel& rc = *rings_[r];
    PendingShip p;
    while (rc.ring.try_pop(p)) {
      ship_sync(static_cast<int>(r), p.records, p.now);
      ++pumped;
    }
  }
  return pumped;
}

bool BatchTransport::ship_sync(int rank, std::span<const SliceRecord> batch,
                               double now) {
  VS_OBS_SCOPED_STAGE(obs::Stage::TransportShip);
  VS_OBS_ONLY(obs::ScopedSpan vs_obs_span("ship", "transport", rank);
              if (obs::enabled()) {
                vs_obs_span.set_virtual(batch.front().t_begin, now);
                TransportInstruments::get().batches.add();
              })

  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Channel& ch = channels_[static_cast<size_t>(rank)];
    seq = seq_make(ch.generation, ch.stats.next_seq++);
    ch.stats.batches_sent += 1;
  }

  double t = now;
  for (uint32_t attempt = 0; attempt < cfg_.max_attempts; ++attempt) {
    if (faults_ != nullptr && faults_->killed(rank, t)) break;
    const TransportFaultModel::Decision d =
        faults_ != nullptr ? faults_->decide(rank, seq, attempt)
                           : TransportFaultModel::Decision{};
    if (d.drop) {
      if (attempt + 1 >= cfg_.max_attempts) break;  // out of attempts: lost
      const double backoff =
          cfg_.retry_backoff * static_cast<double>(uint64_t{1} << attempt);
      std::lock_guard<std::mutex> lock(mu_);
      Channel& ch = channels_[static_cast<size_t>(rank)];
      ch.stats.retries += 1;
      ch.stats.backoff_seconds += backoff;
      VS_OBS_ONLY(if (obs::enabled()) {
        auto& inst = TransportInstruments::get();
        inst.retries.add();
        inst.backoff_seconds.add(backoff);
      })
      t += backoff;
      continue;
    }

    std::vector<DelayedBatch> ready;
    {
      std::lock_guard<std::mutex> lock(mu_);
      Channel& ch = channels_[static_cast<size_t>(rank)];
      if (d.delay_batches > 0) {
        ch.stats.delayed_batches += 1;
        VS_OBS_ONLY(
            if (obs::enabled()) TransportInstruments::get().delayed.add();)
        delayed_.push_back(DelayedBatch{rank, seq, t, d.delay_batches,
                                        {batch.begin(), batch.end()}});
      } else {
        arrive(rank, seq, batch, t, ready);
      }
      // A duplicated delivery arrives as its own event; receive-side
      // sequence tracking suppresses whichever copy lands second.
      if (d.duplicate) arrive(rank, seq, batch, t, ready);
    }
    // Store outside the transport lock: the collector has its own sharded
    // locking and the attached sink its own mutex.
    for (const auto& rb : ready) deliver(rb.rank, rb.seq, rb.records, rb.now);
    return true;
  }

  std::lock_guard<std::mutex> lock(mu_);
  Channel& ch = channels_[static_cast<size_t>(rank)];
  ch.stats.batches_lost += 1;
  ch.stats.records_lost += batch.size();
  VS_OBS_ONLY(if (obs::enabled()) TransportInstruments::get().lost.add();)
  return false;
}

void BatchTransport::drain() {
  // Ring mode: everything the ranks enqueued must reach the delivery path
  // before the delay queue is flushed, or an enqueued batch could outlive
  // the drain inside its ring.
  pump();
  // Re-entrancy / double-invocation guard: drain() is called explicitly at
  // end of run and again from the destructor, and a delivery sink could in
  // principle trigger a nested drain. Only one invocation at a time swaps
  // the delay queue; overlapping calls return immediately (the in-flight
  // drain delivers everything they would have).
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return;
  struct Release {
    std::atomic<bool>& flag;
    ~Release() { flag.store(false); }
  } release{draining_};
  std::vector<DelayedBatch> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<DelayedBatch> held;
    held.swap(delayed_);
    for (auto& ev : held) {
      Channel& ch = channels_[static_cast<size_t>(ev.rank)];
      ch.stats.wire_bytes += ev.records.size() * kRecordWireBytes;
      if (!ch.seen.insert(ev.seq)) {
        ch.stats.duplicates_suppressed += 1;
        continue;
      }
      ch.stats.batches_delivered += 1;
      ch.stats.records_delivered += ev.records.size();
      ch.stats.last_delivery_time = std::max(ch.stats.last_delivery_time, ev.now);
      ready.push_back(std::move(ev));
    }
  }
  for (const auto& rb : ready) deliver(rb.rank, rb.seq, rb.records, rb.now);
}

bool BatchTransport::stale_locked(const Channel& ch, int rank,
                                  double now) const {
  if (faults_ != nullptr && faults_->killed(rank, now)) return true;
  const double last = ch.stats.last_delivery_time;
  // A channel that never delivered ages from its creation time, not from
  // t=0 — a late-joining rank gets a full stale_after grace period.
  if (last < 0.0) return now - ch.first_seen > cfg_.stale_after;
  return now - last > cfg_.stale_after;
}

std::vector<int> BatchTransport::stale_ranks(double now) const {
  std::vector<int> stale;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t r = 0; r < channels_.size(); ++r) {
    if (stale_locked(channels_[r], static_cast<int>(r), now)) {
      stale.push_back(static_cast<int>(r));
    }
  }
  return stale;
}

size_t BatchTransport::sweep_stale(double now,
                                   const std::function<void(int)>& on_stale) {
  std::vector<int> fresh;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t r = 0; r < channels_.size(); ++r) {
      Channel& ch = channels_[r];
      if (ch.reported_stale) continue;
      if (stale_locked(ch, static_cast<int>(r), now)) {
        ch.reported_stale = true;
        fresh.push_back(static_cast<int>(r));
      }
    }
  }
  // Callback outside the lock: it typically takes a detector's mutex.
  if (on_stale) {
    for (int r : fresh) on_stale(r);
  }
  VS_OBS_ONLY(if (obs::enabled() && !fresh.empty()) {
    TransportInstruments::get().stale.add(fresh.size());
  })
  return fresh.size();
}

std::vector<int> BatchTransport::reported_stale_ranks() const {
  std::vector<int> reported;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t r = 0; r < channels_.size(); ++r) {
    if (channels_[r].reported_stale) reported.push_back(static_cast<int>(r));
  }
  return reported;
}

int BatchTransport::add_rank(double now) {
  std::lock_guard<std::mutex> lock(mu_);
  Channel ch;
  ch.first_seen = now;
  channels_.push_back(std::move(ch));
  if (cfg_.channel_ring_capacity > 0) {
    rings_.push_back(std::make_unique<RingChannel>(cfg_.channel_ring_capacity));
  }
  return static_cast<int>(channels_.size()) - 1;
}

bool BatchTransport::rejoin_rank(int rank, double now) {
  std::lock_guard<std::mutex> lock(mu_);
  VS_CHECK_MSG(rank >= 0 && static_cast<size_t>(rank) < channels_.size(),
               "rejoin of unknown rank");
  Channel& ch = channels_[static_cast<size_t>(rank)];
  const bool was_reported = ch.reported_stale;
  // Fresh incarnation: the send counter restarts under a bumped generation
  // (see seq_make) and staleness ages from the rejoin time, exactly like a
  // newly added channel.
  ch.generation += 1;
  ch.stats.next_seq = 0;
  ch.stats.last_delivery_time = -1.0;
  ch.first_seen = now;
  ch.reported_stale = false;
  return was_reported;
}

void BatchTransport::fold_ring_locked(size_t rank, RankChannelStats& s) const {
  if (rings_.empty()) return;
  const RingChannel& rc = *rings_[rank];
  const uint64_t db = rc.dropped_batches.load(std::memory_order_relaxed);
  const uint64_t dr = rc.dropped_records.load(std::memory_order_relaxed);
  s.ring_dropped_batches = db;
  s.ring_dropped_records = dr;
  // A ring-refused batch was sent (the rank called ship) and lost (it
  // never reached the server): sent == delivered + lost stays conserved.
  s.batches_sent += db;
  s.batches_lost += db;
  s.records_lost += dr;
}

RankChannelStats BatchTransport::rank_stats(int rank) const {
  VS_CHECK_MSG(rank >= 0 && static_cast<size_t>(rank) < channels_.size(),
               "stats for unknown rank");
  std::lock_guard<std::mutex> lock(mu_);
  RankChannelStats s = channels_[static_cast<size_t>(rank)].stats;
  fold_ring_locked(static_cast<size_t>(rank), s);
  return s;
}

RankChannelStats BatchTransport::totals() const {
  RankChannelStats sum;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t r = 0; r < channels_.size(); ++r) {
    RankChannelStats s = channels_[r].stats;
    fold_ring_locked(r, s);
    sum.batches_sent += s.batches_sent;
    sum.batches_delivered += s.batches_delivered;
    sum.batches_lost += s.batches_lost;
    sum.records_delivered += s.records_delivered;
    sum.records_lost += s.records_lost;
    sum.retries += s.retries;
    sum.duplicates_suppressed += s.duplicates_suppressed;
    sum.delayed_batches += s.delayed_batches;
    sum.wire_bytes += s.wire_bytes;
    sum.backoff_seconds += s.backoff_seconds;
    sum.last_delivery_time = std::max(sum.last_delivery_time, s.last_delivery_time);
    sum.next_seq += s.next_seq;
    sum.ring_dropped_batches += s.ring_dropped_batches;
    sum.ring_dropped_records += s.ring_dropped_records;
  }
  return sum;
}

void BatchTransport::sample_health(double now,
                                   obs::HealthRecorder& rec) const {
  uint64_t sent = 0, delivered = 0, lost = 0, records = 0, retries = 0;
  uint64_t dup = 0, wire = 0;
  uint64_t never_delivered = 0, stale_reported = 0;
  double lag_max = 0.0, lag_sum = 0.0;
  int lag_max_rank = -1;
  size_t lagging = 0;
  uint64_t wm_min = 0, wm_max = 0;
  bool wm_init = false;
  size_t delayed_depth = 0;
  size_t nranks = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    nranks = channels_.size();
    for (size_t r = 0; r < channels_.size(); ++r) {
      const Channel& ch = channels_[r];
      sent += ch.stats.batches_sent;
      delivered += ch.stats.batches_delivered;
      lost += ch.stats.batches_lost;
      records += ch.stats.records_delivered;
      retries += ch.stats.retries;
      dup += ch.stats.duplicates_suppressed;
      wire += ch.stats.wire_bytes;
      if (ch.reported_stale) ++stale_reported;
      const double last = ch.stats.last_delivery_time;
      // A channel that never delivered ages from its first_seen (job start
      // for construction-time channels, the join/rejoin time for elastic
      // ones) — mirroring stale_locked. Aging a mid-run joiner from t=0
      // would report a lag it never accumulated.
      if (last < 0.0) ++never_delivered;
      const double since = last < 0.0 ? ch.first_seen : last;
      const double lag = now > since ? now - since : 0.0;
      lag_sum += lag;
      ++lagging;
      if (lag > lag_max) {
        lag_max = lag;
        lag_max_rank = static_cast<int>(r);
      }
      if (last >= 0.0) {
        // Watermark spread covers only channels that entered the sequence
        // space: a joiner that has not delivered yet has no watermark to
        // skew, and the generation bits are masked off so a rejoined
        // rank's watermark compares within its current incarnation.
        const uint64_t wm = seq_local(ch.seen.contiguous);
        if (!wm_init) {
          wm_min = wm_max = wm;
          wm_init = true;
        } else {
          wm_min = std::min(wm_min, wm);
          wm_max = std::max(wm_max, wm);
        }
      }
    }
    delayed_depth = delayed_.size();
    if (!rings_.empty()) {
      uint64_t occ_sum = 0, occ_max = 0, hw_max = 0, rdrop_b = 0, rdrop_r = 0;
      for (const auto& rcp : rings_) {
        const auto occ = static_cast<uint64_t>(rcp->ring.size_approx());
        occ_sum += occ;
        occ_max = std::max(occ_max, occ);
        hw_max = std::max(hw_max,
                          rcp->high_water.load(std::memory_order_relaxed));
        rdrop_b += rcp->dropped_batches.load(std::memory_order_relaxed);
        rdrop_r += rcp->dropped_records.load(std::memory_order_relaxed);
      }
      rec.gauge("ring.occupancy", occ_sum);
      rec.gauge("ring.occupancy_max", occ_max);
      rec.gauge("ring.high_water", hw_max);
      rec.gauge("ring.dropped_batches", rdrop_b);
      rec.gauge("ring.dropped_records", rdrop_r);
    }
  }
  rec.gauge("ranks", static_cast<uint64_t>(nranks));
  rec.gauge("batches_sent", sent);
  rec.gauge("batches_delivered", delivered);
  rec.gauge("batches_lost", lost);
  rec.gauge("records_delivered", records);
  rec.gauge("retries", retries);
  rec.gauge("duplicates_suppressed", dup);
  rec.gauge("wire_bytes", wire);
  rec.gauge("stale_reported", stale_reported);
  rec.gauge("ranks_never_delivered", never_delivered);
  rec.gauge("delay_queue_depth", static_cast<uint64_t>(delayed_depth));
  rec.gauge("lag_max", lag_max);
  rec.gauge("lag_max_rank", lag_max_rank);
  rec.gauge("lag_mean", lagging != 0 ? lag_sum / static_cast<double>(lagging)
                                     : 0.0);
  rec.gauge("watermark_min", wm_min);
  rec.gauge("watermark_skew", wm_max - wm_min);
}

}  // namespace vsensor::rt
