// Core data types of the vSensor dynamic module (paper §5).
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>

namespace vsensor::rt {

/// Component a sensor measures; determines which performance matrix its
/// records feed and how the root cause is reported (paper §3.1, §5.2).
enum class SensorType : uint8_t { Computation = 0, Network = 1, IO = 2 };

constexpr int kSensorTypeCount = 3;

const char* sensor_type_name(SensorType type);

/// Static description of one instrumented v-sensor.
struct SensorInfo {
  std::string name;
  SensorType type = SensorType::Computation;
  std::string file;  ///< source file of the snippet
  int line = 0;      ///< first line of the snippet
};

/// One smoothed data point: the aggregate of all executions of one sensor on
/// one rank during one time slice (default 1000 us). This is the unit shipped
/// to the analysis server; its wire size drives the data-volume comparison
/// with tracing tools (paper §6.4).
struct SliceRecord {
  int32_t sensor_id = -1;
  int32_t rank = -1;
  float metric = 0.0F;     ///< dynamic-rule metric (e.g. cache-miss rate)
  float reserved = 0.0F;   ///< padding kept explicit for the wire-size model
  double t_begin = 0.0;    ///< slice start (virtual seconds)
  double t_end = 0.0;      ///< slice end
  double avg_duration = 0.0;  ///< mean execution time within the slice
  double min_duration = 0.0;  ///< fastest execution within the slice
  uint32_t count = 0;         ///< executions aggregated into this record
  uint32_t flags = 0;
};

/// Bytes one record occupies on the wire when batched to the analysis
/// server (packed layout: 2x i32 + 2x f32 + 4x f64 + 2x u32). The in-memory
/// struct has the same size, order, and no padding — the durability layer
/// asserts this and serializes record spans with one bulk copy.
inline constexpr uint64_t kRecordWireBytes = 56;

static_assert(sizeof(SliceRecord) == kRecordWireBytes,
              "SliceRecord layout must match the packed wire layout");
static_assert(std::is_trivially_copyable_v<SliceRecord>,
              "SliceRecord must be bulk-copyable for the durability layer");

/// SliceRecord::flags bit: set by the rank's own probe when the slice fell
/// below the local variance threshold against that rank's history (§5.3).
inline constexpr uint32_t kRecordFlagLocalVariance = 1u << 0;

/// Tunables of the per-rank runtime (paper §5.1-§5.3 defaults).
struct RuntimeConfig {
  /// Smoothing slice length; the paper aggregates over 1000 us by default.
  double slice_seconds = 1e-3;
  /// Virtual cost charged per tick/tock pair while the sensor is enabled.
  double probe_cost = 80e-9;
  /// Residual cost of a disabled probe (timestamp read + branch).
  double disabled_probe_cost = 15e-9;
  /// Sensors whose mean execution time falls below this are switched off at
  /// runtime ("vSensor will turn off the analysis for v-sensors that are too
  /// short", §5.3). Zero disables the optimization.
  double min_avg_duration = 0.0;
  /// Number of executions observed before the disable decision is made.
  uint64_t disable_after = 64;
  /// Records buffered locally before a batched transfer to the server (§5.4).
  size_t batch_records = 64;
  /// Upper bound on the staging buffer's *pre-allocated* capacity: a stage
  /// with a huge batch_records bound still starts small and grows on
  /// demand. Hoisted from a magic constant scattered through the staging
  /// code; validated (> 0) by BatchStage.
  size_t stage_reserve_records = 4096;
  /// Intra-process on-line detection: a slice whose normalized performance
  /// (standard / current) falls below this is flagged locally (§5.3).
  double local_variance_threshold = 0.7;
  /// Local history window in slices: the standard time is the fastest of
  /// the most recent N slices instead of the all-time fastest (0 = paper
  /// default, a single scalar that only ratchets down). A window lets the
  /// baseline re-adapt after a persistent change (e.g. the job migrated).
  size_t history_window = 0;
};

}  // namespace vsensor::rt
