#include "runtime/streaming_detector.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace vsensor::rt {

namespace {

// One online variance flag as a structured event: virtual time, rank,
// sensor, group, and the score vs. the standard it lost against.
void emit_flag(const obs::EventHooks& hooks, double t, int rank, int sensor,
               int group, double norm, double standard, const char* which) {
  obs::Event ev;
  ev.kind = obs::EventKind::VarianceFlag;
  ev.t = t;
  ev.rank = rank;
  ev.sensor = sensor;
  ev.has_group = true;
  ev.group = group;
  ev.value = norm;
  ev.standard = standard;
  ev.detail = which;
  hooks.emit(std::move(ev));
}

}  // namespace

#if VSENSOR_OBS
namespace {
struct StreamingInstruments {
  obs::Counter& batches;
  obs::Counter& records;
  obs::Counter& inter_flags;
  obs::Counter& intra_flags;

  static StreamingInstruments& get() {
    auto& reg = obs::MetricsRegistry::global();
    static StreamingInstruments inst{
        reg.counter("streaming.batches_folded"),
        reg.counter("streaming.records_folded"),
        reg.counter("streaming.inter_rank_flags"),
        reg.counter("streaming.intra_rank_flags")};
    return inst;
  }
};
}  // namespace
#endif

StreamingDetector::StreamingDetector(DetectorConfig cfg,
                                     std::vector<SensorInfo> sensors,
                                     int ranks, double run_time)
    : cfg_(cfg),
      sensors_(std::move(sensors)),
      ranks_(ranks),
      run_time_(run_time),
      buckets_(std::max(
          1, static_cast<int>(std::ceil(run_time / cfg.matrix_resolution)))),
      stats_(sensors_.size()),
      sensor_records_(sensors_.size(), 0) {
  VS_CHECK_MSG(cfg_.matrix_resolution > 0.0, "matrix resolution must be positive");
  VS_CHECK_MSG(ranks_ > 0, "need at least one rank");
  VS_CHECK_MSG(run_time_ > 0.0, "run time must be positive");
}

int StreamingDetector::group_of(float metric) const {
  if (cfg_.metric_bucket_width <= 0.0) return 0;
  return static_cast<int>(
      std::floor(static_cast<double>(metric) / cfg_.metric_bucket_width));
}

int StreamingDetector::bucket_of(double time) const {
  // Mirrors PerformanceMatrix::bucket_of so streaming and batch analysis
  // land every record in the same cell.
  const int b = static_cast<int>(std::floor(time / cfg_.matrix_resolution));
  return std::clamp(b, 0, buckets_ - 1);
}

void StreamingDetector::on_batch(std::span<const SliceRecord> batch) {
  VS_OBS_SCOPED_STAGE(obs::Stage::DetectStreaming);
  VS_OBS_ONLY(if (obs::enabled()) {
    auto& inst = StreamingInstruments::get();
    inst.batches.add();
    inst.records.add(batch.size());
  })
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& rec : batch) {
    VS_CHECK_MSG(rec.sensor_id >= 0 &&
                     static_cast<size_t>(rec.sensor_id) < sensors_.size(),
                 "record references unknown sensor");
    observed_ += 1;
    // Graceful degradation: a straggler from a rank already declared stale
    // must not reopen that rank's history.
    if (stale_.count(rec.rank) != 0) {
      ++stale_records_;
      continue;
    }
    // Mirror of the batch path's degeneracy rule: a zero/near-zero
    // duration is a broken measurement, not the fastest slice — it must
    // not ratchet the running minima down to 0 and zero every later score.
    if (is_degenerate(rec)) {
      ++degenerate_records_;
      continue;
    }
    const auto sensor = static_cast<size_t>(rec.sensor_id);
    const int g = group_of(rec.metric);
    sensor_records_[sensor] += 1;

    // Running minima. A record that lowers a standard normalizes against
    // itself (to 1.0), exactly as in the batch path where the global
    // minimum includes every record.
    auto [std_it, std_new] = standard_.try_emplace({rec.sensor_id, g},
                                                   rec.avg_duration);
    bool std_lowered = std_new;
    if (!std_new && rec.avg_duration < std_it->second) {
      std_it->second = rec.avg_duration;
      std_lowered = true;
    }
    if (publish_standards_ && std_lowered) lowered_.insert({rec.sensor_id, g});
    auto [rank_it, rank_new] = rank_standard_.try_emplace(
        {rec.sensor_id, g, rec.rank}, rec.avg_duration);
    if (!rank_new) rank_it->second = std::min(rank_it->second, rec.avg_duration);

    const double inter_norm = std_it->second / rec.avg_duration;
    const double intra_norm = rank_it->second / rec.avg_duration;
    if (inter_norm < cfg_.variance_threshold) {
      ++inter_flags_;
      VS_OBS_ONLY(
          if (obs::enabled()) StreamingInstruments::get().inter_flags.add();)
      if (hooks_) {
        emit_flag(hooks_, rec.t_end, rec.rank, rec.sensor_id, g, inter_norm,
                  std_it->second, "inter");
      }
    }
    if (intra_norm < cfg_.variance_threshold) {
      ++intra_flags_;
      VS_OBS_ONLY(
          if (obs::enabled()) StreamingInstruments::get().intra_flags.add();)
      if (hooks_) {
        emit_flag(hooks_, rec.t_end, rec.rank, rec.sensor_id, g, intra_norm,
                  rank_it->second, "intra");
      }
    }

    // Welford update over normalized performance.
    RunningStats& st = stats_[sensor];
    st.count += 1;
    const double delta = inter_norm - st.mean;
    st.mean += delta / static_cast<double>(st.count);
    st.m2 += delta * (inter_norm - st.mean);

    last_[{rec.sensor_id, rec.rank}] =
        LastSlice{rec.t_end, rec.avg_duration, inter_norm};

    if (rec.rank >= 0 && rec.rank < ranks_) {
      const double mid = 0.5 * (rec.t_begin + rec.t_end);
      CellSums& cell =
          cells_[{rec.sensor_id, g, rec.rank, bucket_of(mid)}];
      const auto weight = static_cast<double>(rec.count);
      cell.weight_over_avg += weight / rec.avg_duration;
      cell.weight += weight;
    }
  }
}

void StreamingDetector::on_batch(const RecordBatch& batch) {
  const size_t n = batch.size();
  if (n == 0) return;
  VS_OBS_SCOPED_STAGE(obs::Stage::DetectStreaming);
  VS_OBS_ONLY(if (obs::enabled()) {
    auto& inst = StreamingInstruments::get();
    inst.batches.add();
    inst.records.add(n);
  })
  std::lock_guard<std::mutex> lock(mu_);
  const int32_t* ids = batch.sensor_id.data();
  const int32_t* rk = batch.rank.data();
  const float* metric = batch.metric.data();
  const double* avg = batch.avg_duration.data();
  const double* t_begin = batch.t_begin.data();
  const double* t_end = batch.t_end.data();
  const uint32_t* count = batch.count.data();
  const bool grouped = cfg_.metric_bucket_width > 0.0;
  const bool any_stale = !stale_.empty();

  // Map-iterator cache: a staged batch is one rank's slices of few
  // sensors, so consecutive records almost always share their standard
  // and rank-standard keys. std::map inserts never invalidate iterators,
  // so a cached iterator stays good until the key changes.
  auto std_it = standard_.end();
  auto rank_it = rank_standard_.end();
  int cached_sensor = -1, cached_group = 0, cached_rank = 0;
  bool have_std = false, have_rank = false;

  for (size_t i = 0; i < n; ++i) {
    const int sensor_id = ids[i];
    VS_CHECK_MSG(sensor_id >= 0 &&
                     static_cast<size_t>(sensor_id) < sensors_.size(),
                 "record references unknown sensor");
    observed_ += 1;
    const int rank = rk[i];
    if (any_stale && stale_.count(rank) != 0) {
      ++stale_records_;
      continue;
    }
    const double a = avg[i];
    // Degeneracy rule of the AoS path, on the contiguous column.
    if (!(a >= kMinStandardTime)) {
      ++degenerate_records_;
      continue;
    }
    const int g = grouped ? group_of(metric[i]) : 0;
    sensor_records_[static_cast<size_t>(sensor_id)] += 1;

    if (!have_std || sensor_id != cached_sensor || g != cached_group) {
      auto [it, inserted] = standard_.try_emplace({sensor_id, g}, a);
      std_it = it;
      bool std_lowered = inserted;
      if (!inserted && a < std_it->second) {
        std_it->second = a;
        std_lowered = true;
      }
      if (publish_standards_ && std_lowered) lowered_.insert({sensor_id, g});
      cached_sensor = sensor_id;
      cached_group = g;
      have_std = true;
      have_rank = false;
    } else if (a < std_it->second) {
      std_it->second = a;
      if (publish_standards_) lowered_.insert({cached_sensor, cached_group});
    }
    if (!have_rank || rank != cached_rank) {
      auto [it, inserted] =
          rank_standard_.try_emplace({sensor_id, g, rank}, a);
      rank_it = it;
      if (!inserted) rank_it->second = std::min(rank_it->second, a);
      cached_rank = rank;
      have_rank = true;
    } else {
      rank_it->second = std::min(rank_it->second, a);
    }

    const double inter_norm = std_it->second / a;
    const double intra_norm = rank_it->second / a;
    if (inter_norm < cfg_.variance_threshold) {
      ++inter_flags_;
      VS_OBS_ONLY(
          if (obs::enabled()) StreamingInstruments::get().inter_flags.add();)
      if (hooks_) {
        emit_flag(hooks_, t_end[i], rank, sensor_id, g, inter_norm,
                  std_it->second, "inter");
      }
    }
    if (intra_norm < cfg_.variance_threshold) {
      ++intra_flags_;
      VS_OBS_ONLY(
          if (obs::enabled()) StreamingInstruments::get().intra_flags.add();)
      if (hooks_) {
        emit_flag(hooks_, t_end[i], rank, sensor_id, g, intra_norm,
                  rank_it->second, "intra");
      }
    }

    RunningStats& st = stats_[static_cast<size_t>(sensor_id)];
    st.count += 1;
    const double delta = inter_norm - st.mean;
    st.mean += delta / static_cast<double>(st.count);
    st.m2 += delta * (inter_norm - st.mean);

    last_[{sensor_id, rank}] = LastSlice{t_end[i], a, inter_norm};

    if (rank >= 0 && rank < ranks_) {
      const double mid = 0.5 * (t_begin[i] + t_end[i]);
      CellSums& cell = cells_[{sensor_id, g, rank, bucket_of(mid)}];
      const auto weight = static_cast<double>(count[i]);
      cell.weight_over_avg += weight / a;
      cell.weight += weight;
    }
  }
}

void StreamingDetector::mark_stale(int rank, double now) {
  bool fresh = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fresh = stale_.insert(rank).second;
  }
  // Event only on the first verdict for a rank: mark_stale is idempotent
  // and replayed journals re-apply it, but "this rank went stale" is one
  // transition, not one per re-application.
  if (fresh && hooks_) {
    obs::Event ev;
    ev.kind = obs::EventKind::StaleRank;
    ev.t = now;
    ev.rank = rank;
    hooks_.emit(std::move(ev));
  }
}

void StreamingDetector::mark_live(int rank, double now) {
  bool revived = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    revived = stale_.erase(rank) != 0;
  }
  // Like mark_stale: one event per actual transition, so idempotent
  // journal replays don't multiply revival events.
  if (revived && hooks_) {
    obs::Event ev;
    ev.kind = obs::EventKind::RankRejoin;
    ev.t = now;
    ev.rank = rank;
    hooks_.emit(std::move(ev));
  }
}

std::vector<int> StreamingDetector::stale_ranks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {stale_.begin(), stale_.end()};
}

void StreamingDetector::enable_standard_publication(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  publish_standards_ = on;
  if (!on) lowered_.clear();
}

std::vector<StandardUpdate> StreamingDetector::take_lowered_standards() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StandardUpdate> out;
  out.reserve(lowered_.size());
  // Publish each key's *current* board value, not the value at the moment
  // of lowering: later records of the same key may have lowered it again
  // before this drain, and the lowest value is the one peers need.
  for (const auto& key : lowered_) {
    out.push_back(StandardUpdate{key.first, key.second, standard_.at(key)});
  }
  lowered_.clear();
  return out;
}

void StreamingDetector::apply_standard_update(int sensor_id, int group,
                                              double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = standard_.try_emplace({sensor_id, group}, value);
  if (!inserted) it->second = std::min(it->second, value);
}

StreamingDetector::RunningStats StreamingDetector::sensor_stats(
    int sensor_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  VS_CHECK(sensor_id >= 0 && static_cast<size_t>(sensor_id) < stats_.size());
  return stats_[static_cast<size_t>(sensor_id)];
}

std::optional<StreamingDetector::LastSlice> StreamingDetector::last_slice(
    int sensor_id, int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = last_.find({sensor_id, rank});
  if (it == last_.end()) return std::nullopt;
  return it->second;
}

double StreamingDetector::standard_time(int sensor_id, float metric) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = standard_.find({sensor_id, group_of(metric)});
  return it == standard_.end() ? 0.0 : it->second;
}

uint64_t StreamingDetector::observed_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observed_;
}

uint64_t StreamingDetector::stale_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stale_records_;
}

uint64_t StreamingDetector::degenerate_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degenerate_records_;
}

uint64_t StreamingDetector::intra_flags() const {
  std::lock_guard<std::mutex> lock(mu_);
  return intra_flags_;
}

void StreamingDetector::sample_health(double /*now*/,
                                      obs::HealthRecorder& rec) const {
  std::lock_guard<std::mutex> lock(mu_);
  rec.gauge("observed_records", observed_);
  rec.gauge("stale_records", stale_records_);
  rec.gauge("degenerate_records", degenerate_records_);
  rec.gauge("intra_flags", intra_flags_);
  rec.gauge("inter_flags", inter_flags_);
  rec.gauge("standards", static_cast<uint64_t>(standard_.size()));
  rec.gauge("rank_standards", static_cast<uint64_t>(rank_standard_.size()));
  rec.gauge("matrix_cells", static_cast<uint64_t>(cells_.size()));
  rec.gauge("stale_ranks", static_cast<uint64_t>(stale_.size()));
}

uint64_t StreamingDetector::inter_flags() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inter_flags_;
}

StreamingDetector::Snapshot StreamingDetector::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Snapshot{standard_,        rank_standard_,       cells_,
                  stats_,           sensor_records_,      last_,
                  stale_,           observed_,            stale_records_,
                  degenerate_records_, intra_flags_,      inter_flags_};
}

void StreamingDetector::restore(const Snapshot& snap) {
  VS_CHECK_MSG(snap.stats.size() == sensors_.size() &&
                   snap.sensor_records.size() == sensors_.size(),
               "snapshot sensor table does not match this detector");
  std::lock_guard<std::mutex> lock(mu_);
  standard_ = snap.standard;
  rank_standard_ = snap.rank_standard;
  cells_ = snap.cells;
  stats_ = snap.stats;
  sensor_records_ = snap.sensor_records;
  last_ = snap.last;
  stale_ = snap.stale;
  lowered_.clear();
  observed_ = snap.observed;
  stale_records_ = snap.stale_records;
  degenerate_records_ = snap.degenerate_records;
  intra_flags_ = snap.intra_flags;
  inter_flags_ = snap.inter_flags;
}

void StreamingDetector::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  standard_.clear();
  rank_standard_.clear();
  cells_.clear();
  stats_.assign(sensors_.size(), RunningStats{});
  sensor_records_.assign(sensors_.size(), 0);
  last_.clear();
  stale_.clear();
  lowered_.clear();
  observed_ = 0;
  stale_records_ = 0;
  degenerate_records_ = 0;
  intra_flags_ = 0;
  inter_flags_ = 0;
}

StreamingDetector::Snapshot StreamingDetector::merge_snapshots(
    const Snapshot& a, const Snapshot& b) {
  VS_CHECK_MSG(a.stats.size() == b.stats.size() &&
                   a.sensor_records.size() == b.sensor_records.size(),
               "cannot merge snapshots over different sensor tables");
  Snapshot out = a;

  // Standards are running minima, so the merged board is the pointwise min
  // over the union of keys — order-independent.
  for (const auto& [key, value] : b.standard) {
    auto [it, inserted] = out.standard.try_emplace(key, value);
    if (!inserted) it->second = std::min(it->second, value);
  }
  for (const auto& [key, value] : b.rank_standard) {
    auto [it, inserted] = out.rank_standard.try_emplace(key, value);
    if (!inserted) it->second = std::min(it->second, value);
  }

  // Cells are additive contributions; under a rank partition the key sets
  // are disjoint and this reduces to a union.
  for (const auto& [key, cell] : b.cells) {
    CellSums& dst = out.cells[key];
    dst.weight_over_avg += cell.weight_over_avg;
    dst.weight += cell.weight;
  }

  // Welford state merges by Chan's parallel formula. Exact algebraically;
  // the one field of the merged snapshot whose floating-point bits can
  // differ from the sequential fold (not part of finalize()'s output).
  for (size_t s = 0; s < out.stats.size(); ++s) {
    const RunningStats& x = a.stats[s];
    const RunningStats& y = b.stats[s];
    if (x.count == 0) {
      out.stats[s] = y;
    } else if (y.count != 0) {
      RunningStats m;
      m.count = x.count + y.count;
      const double na = static_cast<double>(x.count);
      const double nb = static_cast<double>(y.count);
      const double delta = y.mean - x.mean;
      m.mean = x.mean + delta * nb / (na + nb);
      m.m2 = x.m2 + y.m2 + delta * delta * na * nb / (na + nb);
      out.stats[s] = m;
    }
  }
  for (size_t s = 0; s < out.sensor_records.size(); ++s) {
    out.sensor_records[s] += b.sensor_records[s];
  }

  // Last-slice state is keyed by (sensor, rank) — disjoint under a rank
  // partition. If both sides carry a key anyway, the newer slice wins.
  for (const auto& [key, slice] : b.last) {
    auto [it, inserted] = out.last.try_emplace(key, slice);
    if (!inserted && slice.t_end > it->second.t_end) it->second = slice;
  }

  out.stale.insert(b.stale.begin(), b.stale.end());
  out.observed += b.observed;
  out.stale_records += b.stale_records;
  out.degenerate_records += b.degenerate_records;
  out.intra_flags += b.intra_flags;
  out.inter_flags += b.inter_flags;
  return out;
}

AnalysisResult StreamingDetector::finalize() const {
  VS_OBS_SCOPED_STAGE(obs::Stage::DetectStreaming);
  VS_OBS_ONLY(obs::ScopedSpan vs_obs_span("finalize", "detect");
              if (obs::enabled()) {
                vs_obs_span.set_virtual(0.0, run_time_);
              })
  std::lock_guard<std::mutex> lock(mu_);
  AnalysisResult result{
      .matrices = {PerformanceMatrix(ranks_, buckets_, cfg_.matrix_resolution),
                   PerformanceMatrix(ranks_, buckets_, cfg_.matrix_resolution),
                   PerformanceMatrix(ranks_, buckets_, cfg_.matrix_resolution)},
      .events = {},
      .flagged = {},
      .run_time = run_time_,
      .ranks = ranks_,
      .stale_ranks = {stale_.begin(), stale_.end()},
  };

  // Apply the final standards to the standard-free cell sums. A cell's
  // records of one (sensor, group) contributed sum(count/avg); multiplying
  // by the group's final standard yields exactly the batch Detector's
  // sum(normalized * count) for those records.
  for (const auto& [key, cell] : cells_) {
    const auto& [sensor, group, rank, bucket] = key;
    if (sensor_records_[static_cast<size_t>(sensor)] < cfg_.min_records) {
      continue;
    }
    const double std_time =
        std::max(standard_.at({sensor, group}), kMinStandardTime);
    const double value_sum = std_time * cell.weight_over_avg;
    const double weight = cell.weight;
    if (weight <= 0.0) continue;
    const auto type = sensors_[static_cast<size_t>(sensor)].type;
    result.matrices[static_cast<size_t>(type)].accumulate(
        rank, bucket, value_sum / weight, weight);
  }

  finalize_analysis(result, cfg_);
  return result;
}

}  // namespace vsensor::rt
