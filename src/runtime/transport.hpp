// Resilient batch transport between per-rank staging buffers and the
// analysis server (paper §5.4, hardened).
//
// The paper ships per-sensor slice batches from every rank to a dedicated
// analysis process; at cluster scale that path sees dropped messages,
// duplicated and reordered deliveries, and ranks that die mid-run. The
// monitoring layer must degrade gracefully under exactly the conditions it
// is measuring, so the transport provides:
//  * per-rank monotonically increasing batch sequence numbers, stamped on
//    the send side and deduplicated on the receive side — a duplicated
//    delivery is suppressed before it can double-count records;
//  * a bounded retry-with-backoff ship path: a lost delivery attempt is
//    retried up to `max_attempts` times with exponential (virtual-time)
//    backoff before the batch is declared lost and accounted as such;
//  * per-rank delivery / drop / retry / duplicate counters, so every
//    failure is observable instead of silently skewing the analysis;
//  * stale-rank tracking: a rank whose deliveries stop arriving (or whose
//    transport the fault model killed) is reported stale, letting the
//    detectors exclude it instead of mistaking absence for speed.
//
// Faults are injected through the TransportFaultModel interface; the
// deterministic simulator-side implementation lives in simmpi/faults.hpp so
// this layer stays independent of the simulation harness.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <vector>

#include "obs/events.hpp"
#include "obs/health.hpp"
#include "runtime/collector.hpp"
#include "runtime/record_batch.hpp"
#include "runtime/types.hpp"
#include "support/spsc_ring.hpp"

namespace vsensor::rt {

/// Server-side consumer of unique deliveries, with the transport metadata
/// (origin rank, send-side sequence number, virtual arrival time) the plain
/// Collector interface erases. The crash-tolerant AnalysisServer implements
/// this to journal every batch as (rank, seq, records) before folding it.
class DeliverySink {
 public:
  virtual ~DeliverySink() = default;
  virtual void on_delivery(int rank, uint64_t seq,
                           std::span<const SliceRecord> batch, double now) = 0;
};

/// Elastic-rank generations ride in the high bits of the wire sequence
/// number: a rank that leaves and rejoins under the same id starts a new
/// incarnation whose sequence space sorts strictly above everything the
/// previous incarnation could have shipped. Receive-side watermarks then
/// distinguish "fresh delivery from the new incarnation" (seq above the
/// generation floor — never a duplicate of old history) from "straggler of
/// a superseded incarnation" (below the floor — suppressed), with no wire
/// or checkpoint format change. 16 generation bits leave 48 bits of local
/// sequence per incarnation — both unreachable in any real run.
inline constexpr int kSeqGenShift = 48;
inline constexpr uint64_t kSeqLocalMask = (uint64_t{1} << kSeqGenShift) - 1;

inline constexpr uint64_t seq_make(uint64_t generation, uint64_t local) {
  return (generation << kSeqGenShift) | (local & kSeqLocalMask);
}
inline constexpr uint64_t seq_generation(uint64_t seq) {
  return seq >> kSeqGenShift;
}
inline constexpr uint64_t seq_local(uint64_t seq) { return seq & kSeqLocalMask; }

/// Receive-side per-rank dedup state: a contiguous watermark plus the
/// out-of-order sequence numbers ahead of it, so memory stays bounded by
/// the reorder window instead of growing with the run. Shared between the
/// transport's live dedup and the analysis server's journal-replay dedup
/// (a checkpoint persists these watermarks; replaying a journal suffix
/// that overlaps the checkpoint is then idempotent).
struct SeqTracker {
  uint64_t contiguous = 0;   ///< every seq < contiguous was delivered
  std::set<uint64_t> ahead;  ///< delivered seqs >= contiguous
  bool insert(uint64_t seq); ///< returns false on duplicate
};

/// Decides the fate of one delivery attempt. Implementations must be
/// thread-safe and deterministic in (rank, seq, attempt) — the transport
/// calls concurrently from all rank threads and tests replay decisions.
class TransportFaultModel {
 public:
  struct Decision {
    bool drop = false;      ///< this delivery attempt is lost in flight
    bool duplicate = false; ///< the delivery arrives twice
    int delay_batches = 0;  ///< deliveries that overtake this one (reorder)
  };

  virtual ~TransportFaultModel() = default;

  /// Fate of delivery attempt `attempt` (0-based) of batch `seq` from `rank`.
  virtual Decision decide(int rank, uint64_t seq, uint32_t attempt) const = 0;

  /// True once `rank`'s transport is dead at virtual time `now`; every
  /// subsequent ship from that rank fails without retry.
  virtual bool killed(int rank, double now) const = 0;

  /// Virtual-time points at which the analysis *server* crashes and
  /// recovers (empty = never). The workload harness forwards this to the
  /// crash-tolerant server's crash plan; the transport itself ignores it.
  virtual std::vector<double> server_crash_schedule() const { return {}; }

  /// Seed deriving the deterministic details of each server crash (torn
  /// journal tail bytes). Paired with server_crash_schedule().
  virtual uint64_t schedule_seed() const { return 0; }
};

struct TransportConfig {
  /// Delivery attempts per batch (1 = no retry).
  uint32_t max_attempts = 4;
  /// Virtual seconds of backoff after the first failed attempt; doubles on
  /// each further failure. Accounted per rank, not charged to the clock —
  /// shipping is off the ranks' critical path.
  double retry_backoff = 1e-4;
  /// A rank with no delivery for this many virtual seconds is stale.
  double stale_after = 1.0;
  /// Batches each rank channel can hold in its lock-free SPSC ring before
  /// the producer sees backpressure (rounded up to a power of two).
  /// 0 = synchronous shipping: ship() walks the retry loop inline, exactly
  /// the pre-ring behavior. > 0 = ship() is a wait-free enqueue on the
  /// rank's ring (the rank thread never takes the transport mutex); the
  /// consumer side (pump()/drain()) stamps sequence numbers and delivers.
  /// A full ring refuses the batch — counted per rank in
  /// RankChannelStats::ring_dropped_* so drop accounting stays conserved:
  /// after drain(), sent == delivered + lost + ring_dropped.
  size_t channel_ring_capacity = 0;
};

/// Per-rank transport counters. All monotonically increasing.
struct RankChannelStats {
  uint64_t batches_sent = 0;       ///< ship() calls for this rank
  uint64_t batches_delivered = 0;  ///< unique batches stored by the server
  uint64_t batches_lost = 0;       ///< retries exhausted or rank killed
  uint64_t records_delivered = 0;
  uint64_t records_lost = 0;
  uint64_t retries = 0;                 ///< failed attempts that were retried
  uint64_t duplicates_suppressed = 0;   ///< duplicate deliveries deduplicated
  uint64_t delayed_batches = 0;         ///< deliveries that were reordered
  uint64_t wire_bytes = 0;  ///< bytes that reached the server, duplicates included
  double backoff_seconds = 0.0;         ///< total virtual backoff spent
  double last_delivery_time = -1.0;     ///< virtual time of newest delivery
  uint64_t next_seq = 0;                ///< next sequence number to stamp
  /// Ring mode only: batches/records refused at the SPSC enqueue edge
  /// because the rank's ring was full (already included in batches_lost /
  /// records_lost, broken out so the backpressure edge stays observable).
  uint64_t ring_dropped_batches = 0;
  uint64_t ring_dropped_records = 0;
};

class BatchTransport : public obs::HealthSource {
 public:
  /// `collector` receives every unique delivery; `faults` (optional, not
  /// owned) injects failures. With no fault model the transport is a
  /// transparent sequenced pass-through: same batches, same order, same
  /// collector counters as calling Collector::ingest directly.
  BatchTransport(Collector* collector, int ranks, TransportConfig cfg = {},
                 const TransportFaultModel* faults = nullptr);

  /// Same, but unique deliveries go to `sink` with their transport
  /// metadata (rank, seq, arrival time) intact — the crash-tolerant
  /// analysis server journals each delivery before folding it. Exactly one
  /// of the two destinations is used per transport.
  BatchTransport(DeliverySink* sink, int ranks, TransportConfig cfg = {},
                 const TransportFaultModel* faults = nullptr);

  /// Drains: anything still held in the delay queue is delivered, so
  /// in-flight batches are never silently lost.
  ~BatchTransport();

  /// Ship one batch from `rank` at virtual time `now`. Synchronous mode
  /// (channel_ring_capacity == 0): stamps the next sequence number, walks
  /// the retry loop inline, and returns true if the batch was delivered
  /// (possibly deferred behind later deliveries when the fault model
  /// delays it). Ring mode: wait-free enqueue on `rank`'s SPSC ring;
  /// returns false only if the ring was full (the batch is then counted
  /// as lost + ring-dropped). Thread-safe across ranks; each rank's
  /// ship() calls must come from one thread (the rank thread) — that is
  /// the single-producer half of the SPSC contract.
  bool ship(int rank, std::span<const SliceRecord> batch, double now);

  /// Same, from staged struct-of-arrays columns. The gather to the AoS
  /// wire form happens here, once, at the transport boundary.
  bool ship(int rank, const RecordBatch& batch, double now);

  /// Ring mode: consume every batch currently enqueued on the rank rings,
  /// stamping sequence numbers and walking the normal delivery path (in
  /// rank order, FIFO within a rank). Returns batches pumped. Safe to call
  /// concurrently with producers; consumers serialize on an internal
  /// mutex. No-op in synchronous mode. Must not be called from inside a
  /// delivery callback.
  size_t pump();

  /// Deliver every batch still held in the delay queue (end of run; the
  /// wire is always drained before analysis). In ring mode the rank rings
  /// are pumped first, so nothing enqueued before drain() is lost.
  /// Idempotent and re-entrancy safe: a second call — including the
  /// destructor's — delivers only what arrived since the first, and a
  /// drain triggered from within a drain (e.g. a sink that ships) is a
  /// no-op instead of a deadlock.
  void drain();

  /// Ranks considered stale at `now`: transport killed by the fault model,
  /// or silent for longer than `stale_after` since the channel's last
  /// delivery (or, for a channel that never delivered, since it was
  /// created — job start for construction-time channels, add_rank() time
  /// for late joiners).
  std::vector<int> stale_ranks(double now) const;

  /// Invoke `on_stale` once per newly stale rank at `now` (idempotent per
  /// rank) and return how many ranks were newly reported. The streaming
  /// detector's mark_stale hooks in here.
  size_t sweep_stale(double now, const std::function<void(int)>& on_stale);

  /// Ranks sweep_stale() has reported so far. This — not a raw
  /// stale_ranks(now) recomputation — is the set the detectors were told
  /// about, so session reporting must read it to stay in agreement with
  /// the journaled exclusions.
  std::vector<int> reported_stale_ranks() const;

  /// Grow the channel table by one rank at virtual time `now` (elastic
  /// jobs: a rank joining mid-run). The new channel ages toward staleness
  /// from `now`, not from job start. Returns the new rank id. Not safe
  /// against concurrent ship()/pump() — call from the coordinator between
  /// communication phases.
  int add_rank(double now);

  /// Elastic jobs: rank `rank` left and is rejoining under the same id at
  /// virtual time `now`. Starts a fresh delivery incarnation — the send
  /// counter restarts, the channel ages toward staleness from `now`, and
  /// the sticky reported-stale verdict is cleared (the caller routes the
  /// matching mark_live revival into the detection layer). Returns whether
  /// the rank had been reported stale (i.e. whether a revival is needed).
  /// Safe against concurrent ship()/pump() from *other* ranks; the
  /// rejoining rank itself must not be shipping concurrently.
  bool rejoin_rank(int rank, double now);

  RankChannelStats rank_stats(int rank) const;
  /// Field-wise sum over all ranks (last_delivery_time = max, next_seq = sum).
  RankChannelStats totals() const;

  Collector* collector() const { return collector_; }
  int ranks() const { return static_cast<int>(channels_.size()); }
  const TransportConfig& config() const { return cfg_; }

  /// Health plane (opt-in, non-owning). Hooks emit RingOverflow events
  /// from the producer edge; the sampler is poked with the virtual arrival
  /// time of every unique delivery (the transport's natural clock ticks).
  /// Both must be wired before ranks start shipping and cleared only after
  /// they quiesce — the producer path reads them unsynchronized.
  void set_event_hooks(obs::EventHooks hooks) { hooks_ = hooks; }
  void set_health_sampler(obs::HealthSampler* sampler) { sampler_ = sampler; }

  /// Aggregate channel health: delivery/loss totals, per-rank channel lag
  /// (now − last delivery) extremes, watermark skew (spread of contiguous
  /// sequence watermarks across ranks), delay-queue depth, and — in ring
  /// mode — SPSC occupancy, high-water, and overflow drops.
  void sample_health(double now, obs::HealthRecorder& rec) const override;

 private:
  struct DelayedBatch {
    int rank = -1;
    uint64_t seq = 0;
    double now = 0.0;
    int remaining = 0;  ///< deliveries left before this one releases
    std::vector<SliceRecord> records;
  };

  struct Channel {
    RankChannelStats stats;
    SeqTracker seen;
    /// Delivery incarnation of this rank (bumped by rejoin_rank). Stamped
    /// into the high bits of every shipped seq — see seq_make.
    uint64_t generation = 0;
    bool reported_stale = false;
    /// Virtual time this channel came into existence. Construction-time
    /// channels are born with the job (t=0); channels added mid-run via
    /// add_rank() age from their creation time, so a late-joining rank is
    /// not instantly stale just because it has not delivered yet.
    double first_seen = 0.0;
  };

  /// One batch parked on a rank's SPSC ring between the rank thread's
  /// ship() and the consumer's pump(). Sequence numbers are stamped at
  /// pump time (under mu_), not enqueue time, so the seq space stays
  /// dense even when enqueues race with ring-full drops.
  struct PendingShip {
    double now = 0.0;
    std::vector<SliceRecord> records;
  };

  /// Ring-mode per-rank state, split from Channel because the producer
  /// side must never touch mu_: overflow counters are atomics the rank
  /// thread bumps lock-free and rank_stats() folds into the snapshot.
  struct RingChannel {
    SpscRing<PendingShip> ring;
    std::atomic<uint64_t> dropped_batches{0};
    std::atomic<uint64_t> dropped_records{0};
    /// Deepest occupancy the producer ever observed after an enqueue —
    /// the health plane's saturation signal for this rank's ring.
    std::atomic<uint64_t> high_water{0};
    explicit RingChannel(size_t capacity) : ring(capacity) {}
  };

  /// One delivery arriving at the server: dedup, then store. Appends any
  /// releases from the delay queue to `ready`. Caller holds mu_.
  void arrive(int rank, uint64_t seq, std::span<const SliceRecord> batch,
              double now, std::vector<DelayedBatch>& ready);
  bool stale_locked(const Channel& ch, int rank, double now) const;

  /// Hand one deduplicated batch to whichever destination this transport
  /// was built with. Caller must NOT hold mu_.
  void deliver(int rank, uint64_t seq, std::span<const SliceRecord> batch,
               double now);

  /// The synchronous delivery path (stamp seq, retry loop, arrive).
  /// Called directly by ship() in synchronous mode, by pump() in ring mode.
  bool ship_sync(int rank, std::span<const SliceRecord> batch, double now);
  /// Ring mode: wait-free enqueue of an owned batch onto `rank`'s ring.
  bool ship_enqueue(int rank, std::vector<SliceRecord>&& records, double now);
  /// Merge `rank`'s ring overflow counters into a stats snapshot: ring
  /// drops count as sent + lost so conservation holds. Caller holds mu_.
  void fold_ring_locked(size_t rank, RankChannelStats& s) const;

  Collector* collector_;
  DeliverySink* sink_ = nullptr;
  TransportConfig cfg_;
  const TransportFaultModel* faults_;

  mutable std::mutex mu_;
  std::vector<Channel> channels_;
  std::vector<DelayedBatch> delayed_;
  std::atomic<bool> draining_{false};
  /// Ring mode only (channel_ring_capacity > 0): one SPSC ring per rank,
  /// heap-allocated so the atomics stay address-stable, plus the consumer
  /// serialization for pump().
  std::vector<std::unique_ptr<RingChannel>> rings_;
  std::mutex pump_mu_;

  /// Health plane (non-owning; null = unwired, one branch per site).
  obs::EventHooks hooks_;
  obs::HealthSampler* sampler_ = nullptr;
};

}  // namespace vsensor::rt
