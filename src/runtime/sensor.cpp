#include "runtime/sensor.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/ring_buffer.hpp"

namespace vsensor::rt {

#if VSENSOR_OBS
namespace {
// Instrument handles resolved once per process; the registry keeps them
// alive and stable, so the probe hot path is counter adds only.
struct ProbeInstruments {
  obs::Counter& ticks;
  obs::Counter& tocks;
  obs::Counter& slices;
  obs::Counter& local_flags;
  obs::LogHistogram& sense_duration;

  static ProbeInstruments& get() {
    auto& reg = obs::MetricsRegistry::global();
    static ProbeInstruments inst{
        reg.counter("probe.ticks"), reg.counter("probe.tocks"),
        reg.counter("slicer.slices_completed"),
        reg.counter("probe.local_variance_flags"),
        reg.histogram("probe.sense_duration_seconds")};
    return inst;
  }
};
}  // namespace
#endif

void SenseStats::merge(const SenseStats& other) {
  sense_time += other.sense_time;
  sense_count += other.sense_count;
  durations.merge(other.durations);
  intervals.merge(other.intervals);
  max_duration = std::max(max_duration, other.max_duration);
  max_interval = std::max(max_interval, other.max_interval);
}

double SenseStats::coverage(double total_time) const {
  if (total_time <= 0.0) return 0.0;
  return sense_time / total_time;
}

double SenseStats::frequency(double total_time) const {
  if (total_time <= 0.0) return 0.0;
  return static_cast<double>(sense_count) / total_time;
}

struct SensorRuntime::State {
  SliceAccumulator slices;
  bool in_flight = false;
  double start_time = 0.0;
  uint64_t execs = 0;
  double total_duration = 0.0;
  bool disabled = false;
  /// Fastest slice average so far — the history the paper compares against
  /// ("only a scalar value of standard time needs to be saved", §5.3).
  double standard_time = 0.0;
  /// Recent slice averages when a history window is configured.
  std::optional<RingBuffer<double>> recent;

  State(int sensor_id, int rank, double slice_seconds, size_t history_window)
      : slices(sensor_id, rank, slice_seconds) {
    if (history_window > 0) recent.emplace(history_window);
  }

  void observe_slice(double avg) {
    if (!recent) {
      if (standard_time == 0.0 || avg < standard_time) standard_time = avg;
      return;
    }
    recent->push(avg);
    double best = (*recent)[0];
    for (size_t i = 1; i < recent->size(); ++i) best = std::min(best, (*recent)[i]);
    standard_time = best;
  }
};

SensorRuntime::SensorRuntime(RuntimeConfig cfg, int rank, Collector* collector,
                             NowFn now, ChargeFn charge)
    : cfg_(cfg),
      rank_(rank),
      now_(std::move(now)),
      charge_(std::move(charge)),
      stage_(collector, cfg.batch_records, cfg.stage_reserve_records) {
  VS_CHECK_MSG(now_ != nullptr, "SensorRuntime needs a clock");
  VS_CHECK_MSG(charge_ != nullptr, "SensorRuntime needs a charge function");
}

SensorRuntime::SensorRuntime(RuntimeConfig cfg, int rank,
                             BatchTransport& transport, NowFn now,
                             ChargeFn charge)
    : cfg_(cfg),
      rank_(rank),
      now_(std::move(now)),
      charge_(std::move(charge)),
      stage_(transport, rank, cfg.batch_records, cfg.stage_reserve_records) {
  VS_CHECK_MSG(now_ != nullptr, "SensorRuntime needs a clock");
  VS_CHECK_MSG(charge_ != nullptr, "SensorRuntime needs a charge function");
}

SensorRuntime::~SensorRuntime() = default;

int SensorRuntime::register_sensor(SensorInfo info) {
  const int id = static_cast<int>(infos_.size());
  infos_.push_back(std::move(info));
  states_.emplace_back(id, rank_, cfg_.slice_seconds, cfg_.history_window);
  return id;
}

void SensorRuntime::tick(int id) {
  VS_OBS_SCOPED_STAGE(obs::Stage::ProbeTick);
  VS_OBS_ONLY(if (obs::enabled()) ProbeInstruments::get().ticks.add();)
  VS_CHECK_MSG(id >= 0 && static_cast<size_t>(id) < states_.size(),
               "tick on unregistered sensor");
  State& st = states_[static_cast<size_t>(id)];
  VS_CHECK_MSG(!st.in_flight, "nested tick on the same sensor");
  st.in_flight = true;
  st.start_time = now_();
}

void SensorRuntime::tock(int id, double metric) {
  VS_OBS_SCOPED_STAGE(obs::Stage::ProbeTock);
  VS_CHECK_MSG(id >= 0 && static_cast<size_t>(id) < states_.size(),
               "tock on unregistered sensor");
  State& st = states_[static_cast<size_t>(id)];
  VS_CHECK_MSG(st.in_flight, "tock without a matching tick");
  st.in_flight = false;

  // Read the end timestamp first so the measured duration covers exactly
  // the probed snippet, then charge the probe overhead to the rank's clock
  // so the instrumented run is slower than the original exactly by the
  // instrumentation cost (§6.2).
  const double end = now_();
  const double duration = end - st.start_time;
  charge_(st.disabled ? cfg_.disabled_probe_cost : cfg_.probe_cost);
  st.execs += 1;
  st.total_duration += duration;

  // Sense-distribution bookkeeping (Figs 15-17).
  sense_stats_.sense_time += duration;
  sense_stats_.sense_count += 1;
  sense_stats_.durations.add(duration);
  sense_stats_.max_duration = std::max(sense_stats_.max_duration, duration);
  if (sense_stats_.last_sense_end >= 0.0) {
    const double gap = st.start_time - sense_stats_.last_sense_end;
    if (gap > 0.0) {
      sense_stats_.intervals.add(gap);
      sense_stats_.max_interval = std::max(sense_stats_.max_interval, gap);
    }
  }
  sense_stats_.last_sense_end = end;
  VS_OBS_ONLY(if (obs::enabled()) {
    auto& inst = ProbeInstruments::get();
    inst.tocks.add();
    inst.sense_duration.record(duration);
  })

  if (st.disabled) return;

  {
    VS_OBS_SCOPED_STAGE(obs::Stage::Slicing);
    if (auto completed = st.slices.add(end, duration, metric)) {
      // Intra-process on-line comparison with history (§5.3): update the
      // standard time (all-time or windowed minimum) and flag slices that
      // fall below the threshold.
      const double previous_standard = st.standard_time;
      st.observe_slice(completed->avg_duration);
      if (previous_standard > 0.0 && cfg_.local_variance_threshold > 0.0 &&
          previous_standard <
              completed->avg_duration * cfg_.local_variance_threshold) {
        completed->flags |= kRecordFlagLocalVariance;
        ++local_flags_;
        VS_OBS_ONLY(
            if (obs::enabled()) ProbeInstruments::get().local_flags.add();)
      }
      VS_OBS_ONLY(if (obs::enabled()) ProbeInstruments::get().slices.add();)
      emit(*completed);
    }
  }

  // Runtime optimization (§5.3): switch off analysis for sensors that turn
  // out to be too short to be useful once enough evidence accumulated.
  if (cfg_.min_avg_duration > 0.0 && st.execs >= cfg_.disable_after &&
      st.total_duration / static_cast<double>(st.execs) < cfg_.min_avg_duration) {
    st.disabled = true;
  }
}

void SensorRuntime::emit(const SliceRecord& rec) {
  records_emitted_ += 1;
  stage_.push(rec);
}

void SensorRuntime::flush() {
  {
    VS_OBS_SCOPED_STAGE(obs::Stage::Slicing);
    for (auto& st : states_) {
      if (st.disabled) continue;
      if (auto rec = st.slices.flush()) {
        VS_OBS_ONLY(if (obs::enabled()) ProbeInstruments::get().slices.add();)
        emit(*rec);
      }
    }
  }
  // The run may end long after the last sense (AMG's adaptive solve phase
  // has no sensors at all): record the trailing gap so interval statistics
  // reflect the uncovered tail of the lifetime (paper Fig 17).
  if (sense_stats_.last_sense_end >= 0.0) {
    const double gap = now_() - sense_stats_.last_sense_end;
    if (gap > 0.0) {
      sense_stats_.intervals.add(gap);
      sense_stats_.max_interval = std::max(sense_stats_.max_interval, gap);
    }
  }
  stage_.flush();
}

bool SensorRuntime::disabled(int id) const {
  VS_CHECK(id >= 0 && static_cast<size_t>(id) < states_.size());
  return states_[static_cast<size_t>(id)].disabled;
}

uint64_t SensorRuntime::execution_count(int id) const {
  VS_CHECK(id >= 0 && static_cast<size_t>(id) < states_.size());
  return states_[static_cast<size_t>(id)].execs;
}

double SensorRuntime::standard_time(int id) const {
  VS_CHECK(id >= 0 && static_cast<size_t>(id) < states_.size());
  return states_[static_cast<size_t>(id)].standard_time;
}

}  // namespace vsensor::rt
