// Per-sensor slice aggregation: the data-smoothing stage of §5.1.
#pragma once

#include <limits>
#include <optional>

#include "runtime/types.hpp"

namespace vsensor::rt {

/// Accumulates individual sensor executions and emits one SliceRecord per
/// time slice. High-frequency OS noise averages out inside a slice, so
/// downstream detection sees only durable variance (paper Fig 12).
class SliceAccumulator {
 public:
  SliceAccumulator(int sensor_id, int rank, double slice_seconds);

  /// Record one execution finishing at `end_time` with length `duration`.
  /// Returns the completed record of the *previous* slice if `end_time`
  /// crossed a slice boundary.
  std::optional<SliceRecord> add(double end_time, double duration, double metric);

  /// Emit the in-progress slice, if any (end of run).
  std::optional<SliceRecord> flush();

 private:
  SliceRecord make_record() const;

  int sensor_id_;
  int rank_;
  double slice_seconds_;
  int64_t slice_index_ = -1;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double metric_sum_ = 0.0;
  uint32_t count_ = 0;
};

}  // namespace vsensor::rt
