// Per-sensor slice aggregation (the data-smoothing stage of §5.1) and the
// per-rank staging buffer that batches completed slices for transfer to
// the analysis server (§5.4).
#pragma once

#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "runtime/collector.hpp"
#include "runtime/types.hpp"

namespace vsensor::rt {

/// Accumulates individual sensor executions and emits one SliceRecord per
/// time slice. High-frequency OS noise averages out inside a slice, so
/// downstream detection sees only durable variance (paper Fig 12).
class SliceAccumulator {
 public:
  SliceAccumulator(int sensor_id, int rank, double slice_seconds);

  /// Record one execution finishing at `end_time` with length `duration`.
  /// Returns the completed record of the *previous* slice if `end_time`
  /// crossed a slice boundary.
  std::optional<SliceRecord> add(double end_time, double duration, double metric);

  /// Emit the in-progress slice, if any (end of run).
  std::optional<SliceRecord> flush();

 private:
  SliceRecord make_record() const;

  int sensor_id_;
  int rank_;
  double slice_seconds_;
  int64_t slice_index_ = -1;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double metric_sum_ = 0.0;
  uint32_t count_ = 0;
};

class BatchTransport;

/// Per-rank staging buffer: completed slices batch locally and ship to the
/// collector only when `capacity` records accumulated, so the rank takes a
/// shard lock once per batch instead of once per record (§5.4). Records
/// stage in struct-of-arrays form (RecordBatch): the collector ingests the
/// columns directly and the scoring kernels downstream iterate contiguous
/// arrays. One per rank thread; not thread-safe — cross-thread contention
/// exists only inside the collector's shards.
class BatchStage {
 public:
  /// `collector` may be null (records are then staged and discarded on
  /// ship, useful for uninstrumented baselines and benchmarks). `reserve`
  /// caps the staging buffer's pre-allocation
  /// (RuntimeConfig::stage_reserve_records).
  BatchStage(Collector* collector, size_t capacity,
             size_t reserve = RuntimeConfig{}.stage_reserve_records);

  /// Transport mode: batches ship through the resilient transport as
  /// `rank`'s channel (sequenced, deduplicated, retried — see
  /// runtime/transport.hpp) instead of straight into a collector.
  BatchStage(BatchTransport& transport, int rank, size_t capacity,
             size_t reserve = RuntimeConfig{}.stage_reserve_records);

  /// Flushes: records staged at teardown are shipped, not dropped. The
  /// count of records rescued this way is surfaced process-wide through
  /// unflushed_records(), so a missing explicit flush() stays observable.
  /// Never throws, and never double-ships: flush() detaches the staged
  /// records before shipping, so a ship failure can't leave them queued
  /// for a second send.
  ~BatchStage();

  /// Stage one record; ships the batch when the capacity is reached.
  void push(const SliceRecord& rec);

  /// Ship whatever is staged (end of run / rank completion).
  void flush();

  size_t staged() const { return buf_.size(); }
  size_t reserve_cap() const { return reserve_; }
  uint64_t shipped_batches() const { return shipped_batches_; }
  /// Records the transport refused permanently (retries exhausted or the
  /// rank's transport was killed). Always 0 in direct-collector mode.
  uint64_t lost_records() const { return lost_records_; }

  /// Process-wide count of records that reached a BatchStage destructor
  /// still staged — i.e. flush() was never called. They are shipped, not
  /// lost, but a nonzero count points at a teardown path skipping flush().
  static uint64_t unflushed_records();

 private:
  void ship(const RecordBatch& batch);

  Collector* collector_;
  BatchTransport* transport_ = nullptr;
  int rank_ = -1;
  size_t capacity_;
  size_t reserve_;
  RecordBatch buf_;  ///< SoA staging columns
  uint64_t shipped_batches_ = 0;
  uint64_t lost_records_ = 0;
};

}  // namespace vsensor::rt
