#include "runtime/record_batch.hpp"

#include "runtime/detector.hpp"
#include "support/simd.hpp"

namespace vsensor::rt {

void RecordBatch::reserve(size_t n) {
  sensor_id.reserve(n);
  rank.reserve(n);
  metric.reserve(n);
  reserved.reserve(n);
  t_begin.reserve(n);
  t_end.reserve(n);
  avg_duration.reserve(n);
  min_duration.reserve(n);
  count.reserve(n);
  flags.reserve(n);
}

void RecordBatch::clear() {
  sensor_id.clear();
  rank.clear();
  metric.clear();
  reserved.clear();
  t_begin.clear();
  t_end.clear();
  avg_duration.clear();
  min_duration.clear();
  count.clear();
  flags.clear();
}

void RecordBatch::push_back(const SliceRecord& rec) {
  sensor_id.push_back(rec.sensor_id);
  rank.push_back(rec.rank);
  metric.push_back(rec.metric);
  reserved.push_back(rec.reserved);
  t_begin.push_back(rec.t_begin);
  t_end.push_back(rec.t_end);
  avg_duration.push_back(rec.avg_duration);
  min_duration.push_back(rec.min_duration);
  count.push_back(rec.count);
  flags.push_back(rec.flags);
}

void RecordBatch::append(std::span<const SliceRecord> records) {
  reserve(size() + records.size());
  for (const auto& rec : records) push_back(rec);
}

SliceRecord RecordBatch::get(size_t i) const {
  SliceRecord rec;
  rec.sensor_id = sensor_id[i];
  rec.rank = rank[i];
  rec.metric = metric[i];
  rec.reserved = reserved[i];
  rec.t_begin = t_begin[i];
  rec.t_end = t_end[i];
  rec.avg_duration = avg_duration[i];
  rec.min_duration = min_duration[i];
  rec.count = count[i];
  rec.flags = flags[i];
  return rec;
}

std::vector<SliceRecord> RecordBatch::to_aos() const {
  std::vector<SliceRecord> out(size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = get(i);
  return out;
}

RecordBatch RecordBatch::from_aos(std::span<const SliceRecord> records) {
  RecordBatch batch;
  batch.append(records);
  return batch;
}

double RecordBatch::min_standard() const {
  return simd::min_above(avg_duration.data(), avg_duration.size(),
                         kMinStandardTime);
}

double RecordBatch::max_t_end() const {
  return simd::max_value(t_end.data(), t_end.size());
}

}  // namespace vsensor::rt
