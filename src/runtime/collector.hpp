// The analysis server (paper §5.4).
//
// The paper dedicates one extra process to inter-process analysis; ranks
// buffer slice records locally and periodically push them in batches. Here
// the server is an in-process thread-safe object ingesting concurrently from
// all rank threads; the wire volume of every batch is accounted so the
// trace-volume comparison against tracing tools (§6.4) is faithful.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "runtime/types.hpp"

namespace vsensor::rt {

class Collector {
 public:
  /// Register the sensor table (identical on every rank; registration is
  /// deterministic because instrumentation is static).
  void set_sensors(std::vector<SensorInfo> sensors);

  /// Receive one batch from a rank. Thread-safe.
  void ingest(std::span<const SliceRecord> batch);

  const std::vector<SensorInfo>& sensors() const { return sensors_; }

  /// All records received so far (stable order only after the run joined).
  std::vector<SliceRecord> records() const;

  uint64_t record_count() const;
  /// Total bytes shipped to the server (batches x record wire size).
  uint64_t bytes_received() const;
  /// Number of batch transfers (network messages to the server).
  uint64_t batch_count() const;

 private:
  mutable std::mutex mu_;
  std::vector<SensorInfo> sensors_;
  std::vector<SliceRecord> records_;
  uint64_t bytes_ = 0;
  uint64_t batches_ = 0;
};

}  // namespace vsensor::rt
