// The analysis server (paper §5.4).
//
// The paper dedicates one extra process to inter-process analysis; ranks
// buffer slice records locally and periodically push them in batches. Here
// the server is an in-process thread-safe object ingesting concurrently from
// all rank threads; the wire volume of every batch is accounted so the
// trace-volume comparison against tracing tools (§6.4) is faithful.
//
// Storage is sharded by sensor id: each shard has its own mutex and a
// bounded ring-buffer store, so concurrent ranks pushing records of
// different sensors never contend on one global lock and memory stays
// bounded no matter how long the run is. When a shard overflows, the oldest
// records are overwritten and counted in dropped_records() — backpressure
// accounting instead of unbounded growth.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "obs/health.hpp"
#include "runtime/record_batch.hpp"
#include "runtime/types.hpp"
#include "support/ring_buffer.hpp"

namespace vsensor::rt {

/// Sink receiving every ingested batch in arrival order. The streaming
/// detector implements this to fold batches into running statistics as
/// they arrive (on-line analysis without replaying history).
class BatchSink {
 public:
  virtual ~BatchSink() = default;
  virtual void on_batch(std::span<const SliceRecord> batch) = 0;
  /// Struct-of-arrays delivery (the staging hot path). The default bridges
  /// to the AoS entry so existing sinks keep working; SoA-native sinks
  /// (the streaming detector) override to skip the gather.
  virtual void on_batch(const RecordBatch& batch) {
    const auto aos = batch.to_aos();
    on_batch(std::span<const SliceRecord>(aos));
  }
  /// Transport-layer stale verdict for `rank` (BatchTransport::sweep_stale
  /// forwarded through the collector). Default ignores it; the streaming
  /// detector overrides to exclude the rank's stragglers. This is how the
  /// verdict reaches a detector on server-less runs, where no
  /// AnalysisServer exists to journal and forward it.
  virtual void on_stale_rank(int rank) { (void)rank; }
  /// Elastic revival for `rank` (BatchTransport::rejoin_rank forwarded
  /// through the collector). Default ignores it; the streaming detector
  /// overrides to lift the rank's stale exclusion.
  virtual void on_live_rank(int rank) { (void)rank; }
};

struct CollectorConfig {
  /// Number of independent storage shards (sensor_id % shards).
  size_t shards = 16;
  /// Bound on records retained per shard. Storage is allocated lazily, so
  /// a generous bound costs nothing until records actually arrive.
  size_t shard_capacity = 1u << 20;
};

class Collector : public obs::HealthSource {
 public:
  Collector() : Collector(CollectorConfig{}) {}
  explicit Collector(CollectorConfig cfg);

  /// Register the sensor table (identical on every rank; registration is
  /// deterministic because instrumentation is static).
  void set_sensors(std::vector<SensorInfo> sensors);

  /// Receive one batch from a rank. Thread-safe: records scatter to their
  /// sensor's shard, and each shard mutex is taken at most once per batch.
  void ingest(std::span<const SliceRecord> batch);

  /// Struct-of-arrays ingest (what BatchStage ships): the shard scatter
  /// scans the contiguous sensor-id column instead of striding through
  /// 56-byte records, and the batch reaches an SoA-native sink without an
  /// intermediate gather. Accounting identical to the AoS overload.
  void ingest(const RecordBatch& batch);

  /// Attach a streaming sink; every subsequent batch is forwarded to it
  /// after being stored. Pass nullptr to detach. Not thread-safe against
  /// concurrent ingest — attach before the run starts.
  void attach_sink(BatchSink* sink) { sink_ = sink; }

  /// Forward a transport stale verdict to the attached sink (no-op when
  /// none is attached). Thread-safe for the same reason ingest's forward
  /// is: the sink pointer is fixed before the run starts.
  void notify_stale(int rank) {
    if (sink_ != nullptr) sink_->on_stale_rank(rank);
  }

  /// Forward an elastic revival to the attached sink (see notify_stale).
  void notify_live(int rank) {
    if (sink_ != nullptr) sink_->on_live_rank(rank);
  }

  const std::vector<SensorInfo>& sensors() const { return sensors_; }

  /// All retained records, gathered into one vector (shard-major order;
  /// stable only after the run joined). This copies — analysis paths
  /// should prefer visit_records() or take_records().
  std::vector<SliceRecord> records() const;

  /// Locked view: invokes `fn` on contiguous spans of retained records,
  /// shard by shard under each shard's lock, without copying anything.
  /// `fn` must not call back into the collector.
  void visit_records(
      const std::function<void(std::span<const SliceRecord>)>& fn) const;

  /// Move all retained records out, leaving the shards empty. Cumulative
  /// counters (ingested/bytes/batches/dropped) are unaffected.
  std::vector<SliceRecord> take_records();

  /// Cumulative accounting counters as one value, for checkpointing: a
  /// crash-recovered server restores these so ingest/byte/batch accounting
  /// stays continuous across the restart (replayed journal batches then
  /// advance them exactly as the originals did).
  struct Counters {
    uint64_t ingested = 0;
    uint64_t dropped = 0;
    uint64_t taken = 0;
    uint64_t bytes = 0;
    uint64_t batches = 0;
  };
  Counters counters() const;
  void restore_counters(const Counters& c);

  /// Crash simulation: drop every retained record and zero all counters,
  /// keeping the sensor table and attached sink. The server's recovery
  /// path then restores checkpointed counters and replays the journal.
  void reset();

  /// Records currently retained (ingested minus dropped minus taken).
  uint64_t record_count() const;
  /// Records ever ingested, including any later dropped or taken.
  uint64_t ingested_records() const { return ingested_.load(std::memory_order_relaxed); }
  /// Records overwritten because their shard hit capacity.
  uint64_t dropped_records() const { return dropped_.load(std::memory_order_relaxed); }
  /// Total bytes shipped to the server (batches x record wire size).
  uint64_t bytes_received() const { return bytes_.load(std::memory_order_relaxed); }
  /// Number of batch transfers (network messages to the server).
  uint64_t batch_count() const { return batches_.load(std::memory_order_relaxed); }

  size_t shard_count() const { return shards_.size(); }

  /// Health plane: cumulative ingest/drop/byte/batch counters plus the
  /// currently retained record count. All lock-free atomic reads.
  void sample_health(double now, obs::HealthRecorder& rec) const override;

 private:
  struct Shard {
    mutable std::mutex mu;
    RingBuffer<SliceRecord> store;
    explicit Shard(size_t capacity) : store(capacity) {}
  };

  size_t shard_of(int32_t sensor_id) const;

  CollectorConfig cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<SensorInfo> sensors_;
  BatchSink* sink_ = nullptr;
  std::atomic<uint64_t> ingested_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> taken_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> batches_{0};
};

}  // namespace vsensor::rt
