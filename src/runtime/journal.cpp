#include "runtime/journal.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "support/binio.hpp"
#include "support/crc32.hpp"
#include "support/error.hpp"

namespace vsensor::rt {

namespace {

constexpr const char* kHeader = "vsensor-journal 1\n";
constexpr size_t kFrameHeaderBytes = 8;  // u32 len + u32 crc

#if VSENSOR_OBS
struct JournalInstruments {
  obs::Counter& frames;
  obs::Counter& bytes;
  obs::Counter& commits;
  obs::Counter& committed_bytes;
  obs::Counter& io_errors;
  obs::Counter& lost_bytes;

  static JournalInstruments& get() {
    auto& reg = obs::MetricsRegistry::global();
    static JournalInstruments inst{reg.counter("journal.frames_appended"),
                                   reg.counter("journal.bytes_appended"),
                                   reg.counter("journal.commits"),
                                   reg.counter("journal.bytes_committed"),
                                   reg.counter("journal.io_errors"),
                                   reg.counter("journal.lost_bytes")};
    return inst;
  }
};
#endif

using vsensor::put_raw;

template <typename T>
void put(std::string& out, T v) {
  put_raw(out, v);
}

/// Parse one frame payload. Returns false on any structural mismatch.
bool parse_payload(const char* data, size_t len, JournalFrame* frame) {
  ByteReader in{data, len};
  uint8_t kind = 0;
  uint32_t count = 0;
  if (!in.read(&kind) || !in.read(&frame->rank) || !in.read(&frame->seq) ||
      !in.read(&count)) {
    return false;
  }
  if (kind > static_cast<uint8_t>(JournalFrameKind::RankRejoin)) return false;
  frame->kind = static_cast<JournalFrameKind>(kind);
  // The payload length must match the declared record count exactly: a
  // frame with trailing or missing bytes is corrupt, not "close enough".
  const size_t want = 1 + 4 + 8 + 4 + size_t{count} * kRecordWireBytes;
  if (want != len) return false;
  // SliceRecord's in-memory layout IS the wire layout (static_asserts in
  // runtime/types.hpp pin size and trivial copyability), so the whole
  // record block decodes as one bulk copy instead of ten reads per record.
  frame->records.resize(count);
  if (count > 0) {
    std::memcpy(frame->records.data(), data + in.pos,
                size_t{count} * kRecordWireBytes);
  }
  return true;
}

}  // namespace

std::string encode_journal_frame(const JournalFrame& frame) {
  std::string payload;
  payload.reserve(17 + frame.records.size() * kRecordWireBytes);
  put(payload, static_cast<uint8_t>(frame.kind));
  put(payload, frame.rank);
  put(payload, frame.seq);
  put(payload, static_cast<uint32_t>(frame.records.size()));
  // Bulk append: memory layout == wire layout (see parse_payload).
  if (!frame.records.empty()) {
    payload.append(reinterpret_cast<const char*>(frame.records.data()),
                   frame.records.size() * kRecordWireBytes);
  }

  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  put(out, static_cast<uint32_t>(payload.size()));
  put(out, crc32(payload));
  out += payload;
  return out;
}

JournalFrame make_standard_frame(int32_t sensor_id, int32_t group,
                                 double value) {
  JournalFrame frame;
  frame.kind = JournalFrameKind::Standard;
  frame.rank = sensor_id;
  frame.seq = static_cast<uint64_t>(static_cast<uint32_t>(group));
  SliceRecord carrier{};
  carrier.sensor_id = sensor_id;
  carrier.rank = group;
  carrier.avg_duration = value;
  carrier.min_duration = value;
  carrier.count = 1;
  frame.records.push_back(carrier);
  return frame;
}

std::optional<StandardFrameView> decode_standard_frame(
    const JournalFrame& frame) {
  if (frame.kind != JournalFrameKind::Standard) return std::nullopt;
  if (frame.records.size() != 1) return std::nullopt;
  StandardFrameView view;
  view.sensor_id = frame.rank;
  view.group = static_cast<int32_t>(static_cast<uint32_t>(frame.seq));
  view.value = frame.records.front().avg_duration;
  if (view.sensor_id < 0 || !(view.value > 0.0)) return std::nullopt;
  return view;
}

JournalWriter::JournalWriter(std::string path, JournalWriterConfig cfg,
                             io::Vfs* vfs)
    : path_(std::move(path)), cfg_(cfg), vfs_(vfs) {
  VS_CHECK_MSG(cfg_.commit_every_frames > 0, "commit interval must be positive");
  open_truncated();
}

JournalWriter::~JournalWriter() {
  // Best effort: a clean shutdown commits; a simulated crash calls
  // discard_buffer() first, so this flushes nothing. Anything the final
  // drain cannot land was acknowledged to a caller and is gone — count it.
  if (!commit()) add_lost(buf_.size());
}

bool JournalWriter::open_truncated() {
  std::string err;
  file_ = io::resolve(vfs_).open_truncate(path_, &err);
  if (file_ == nullptr) {
    record_error(err.empty() ? "cannot open journal for writing: " + path_
                             : err);
    return false;
  }
  const auto r = file_->append(kHeader, std::strlen(kHeader));
  if (!r.ok) {
    record_error(r.error);
    file_.reset();
    return false;
  }
  committed_bytes_ += std::strlen(kHeader);
  return true;
}

bool JournalWriter::append(const JournalFrame& frame) {
  VS_OBS_SCOPED_STAGE(obs::Stage::Durability);
  const std::string encoded = encode_journal_frame(frame);
  buf_ += encoded;
  ++appended_frames_;
  ++frames_since_commit_;
  appended_bytes_ += encoded.size();
  VS_OBS_ONLY(if (obs::enabled()) {
    auto& inst = JournalInstruments::get();
    inst.frames.add();
    inst.bytes.add(encoded.size());
  })
  if (buf_.size() >= cfg_.buffer_bytes ||
      frames_since_commit_ >= cfg_.commit_every_frames) {
    return commit();
  }
  return true;
}

bool JournalWriter::commit() {
  frames_since_commit_ = 0;
  if (buf_.empty()) return file_ != nullptr;
  if (file_ == nullptr) {
    record_error("journal stream not open: " + path_);
    return false;
  }
  VS_OBS_SCOPED_STAGE(obs::Stage::Durability);
  const auto r = file_->append(buf_.data(), buf_.size());
  if (r.written > 0) {
    // Partial progress is real progress: the landed prefix leaves the
    // buffer so a retry only re-drives what is still owed.
    committed_bytes_ += r.written;
    VS_OBS_ONLY(if (obs::enabled()) {
      JournalInstruments::get().committed_bytes.add(r.written);
    })
    buf_.erase(0, r.written);
  }
  if (!r.ok) {
    record_error(r.error);
    return false;
  }
  const auto f = file_->flush();  // to the OS page cache; never fsync
  if (!f.ok) {
    record_error(f.error);
    return false;
  }
  ++commits_;
  VS_OBS_ONLY(if (obs::enabled()) { JournalInstruments::get().commits.add(); })
  return true;
}

bool JournalWriter::reopen_truncated() {
  buf_.clear();
  frames_since_commit_ = 0;
  file_.reset();
  return open_truncated();
}

void JournalWriter::discard_buffer() {
  buf_.clear();
  frames_since_commit_ = 0;
}

size_t JournalWriter::drop_buffer_as_lost() {
  const size_t dropped = buf_.size();
  add_lost(dropped);
  buf_.clear();
  frames_since_commit_ = 0;
  return dropped;
}

void JournalWriter::record_error(std::string what) {
  ++io_errors_;
  last_error_ = std::move(what);
  VS_OBS_ONLY(if (obs::enabled()) { JournalInstruments::get().io_errors.add(); })
}

void JournalWriter::add_lost(size_t bytes) {
  if (bytes == 0) return;
  lost_bytes_ += bytes;
  VS_OBS_ONLY(
      if (obs::enabled()) { JournalInstruments::get().lost_bytes.add(bytes); })
}

JournalLoad load_journal(const std::string& path) {
  JournalLoad load;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    load.warning = "journal missing or unreadable: " + path;
    return load;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string bytes = ss.str();
  load.total_bytes = bytes.size();

  const size_t header_len = std::strlen(kHeader);
  if (bytes.size() < header_len ||
      bytes.compare(0, header_len, kHeader) != 0) {
    load.torn_bytes = bytes.size();
    load.warning = "journal header invalid; no frames salvaged";
    return load;
  }
  load.header_valid = true;
  load.valid_bytes = header_len;

  size_t pos = header_len;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameHeaderBytes) {
      load.warning = "torn frame header at byte " + std::to_string(pos);
      break;
    }
    uint32_t len = 0;
    uint32_t crc = 0;
    std::memcpy(&len, bytes.data() + pos, 4);
    std::memcpy(&crc, bytes.data() + pos + 4, 4);
    if (bytes.size() - pos - kFrameHeaderBytes < len) {
      load.warning = "torn frame payload at byte " + std::to_string(pos);
      break;
    }
    const char* payload = bytes.data() + pos + kFrameHeaderBytes;
    if (crc32(payload, static_cast<size_t>(len)) != crc) {
      load.warning = "frame CRC mismatch at byte " + std::to_string(pos);
      break;
    }
    JournalFrame frame;
    if (!parse_payload(payload, len, &frame)) {
      load.warning = "malformed frame payload at byte " + std::to_string(pos);
      break;
    }
    load.frames.push_back(std::move(frame));
    pos += kFrameHeaderBytes + len;
    load.valid_bytes = pos;
  }
  load.torn_bytes = load.total_bytes - load.valid_bytes;
  return load;
}

}  // namespace vsensor::rt
