#include "runtime/slicer.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "runtime/transport.hpp"
#include "support/error.hpp"

namespace vsensor::rt {

#if VSENSOR_OBS
namespace {
struct StageInstruments {
  obs::Counter& batches;
  obs::Counter& records;
  obs::LogHistogram& batch_records;

  static StageInstruments& get() {
    auto& reg = obs::MetricsRegistry::global();
    static StageInstruments inst{
        reg.counter("stage.batches_shipped"),
        reg.counter("stage.records_staged"),
        // Batch sizes are small integers; a tight base keeps the buckets
        // meaningful (1, 2, 4, ... records).
        reg.histogram("stage.batch_records",
                      {.min_value = 1.0, .growth = 2.0, .buckets = 24})};
    return inst;
  }
};
}  // namespace
#endif

SliceAccumulator::SliceAccumulator(int sensor_id, int rank, double slice_seconds)
    : sensor_id_(sensor_id), rank_(rank), slice_seconds_(slice_seconds) {
  VS_CHECK_MSG(slice_seconds > 0.0, "slice length must be positive");
}

SliceRecord SliceAccumulator::make_record() const {
  SliceRecord rec;
  rec.sensor_id = sensor_id_;
  rec.rank = rank_;
  rec.t_begin = static_cast<double>(slice_index_) * slice_seconds_;
  rec.t_end = rec.t_begin + slice_seconds_;
  rec.avg_duration = sum_ / static_cast<double>(count_);
  rec.min_duration = min_;
  rec.count = count_;
  rec.metric = static_cast<float>(metric_sum_ / static_cast<double>(count_));
  return rec;
}

std::optional<SliceRecord> SliceAccumulator::add(double end_time, double duration,
                                                 double metric) {
  VS_CHECK_MSG(duration >= 0.0, "negative sensor duration");
  const auto idx = static_cast<int64_t>(std::floor(end_time / slice_seconds_));
  std::optional<SliceRecord> completed;
  if (idx != slice_index_ && count_ > 0) {
    completed = make_record();
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    metric_sum_ = 0.0;
    count_ = 0;
  }
  slice_index_ = idx;
  sum_ += duration;
  min_ = std::min(min_, duration);
  metric_sum_ += metric;
  ++count_;
  return completed;
}

std::optional<SliceRecord> SliceAccumulator::flush() {
  if (count_ == 0) return std::nullopt;
  auto rec = make_record();
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  metric_sum_ = 0.0;
  count_ = 0;
  return rec;
}

namespace {
// Cumulative over the process: records rescued by a BatchStage destructor
// because flush() was never called. Monotonic; tests compare deltas.
std::atomic<uint64_t> g_unflushed_records{0};
}  // namespace

BatchStage::BatchStage(Collector* collector, size_t capacity, size_t reserve)
    : collector_(collector), capacity_(capacity), reserve_(reserve) {
  VS_CHECK_MSG(capacity > 0, "batch capacity must be positive");
  VS_CHECK_MSG(reserve > 0, "stage reserve cap must be positive");
  buf_.reserve(std::min<size_t>(capacity, reserve_));
}

BatchStage::BatchStage(BatchTransport& transport, int rank, size_t capacity,
                       size_t reserve)
    : collector_(nullptr), transport_(&transport), rank_(rank),
      capacity_(capacity), reserve_(reserve) {
  VS_CHECK_MSG(capacity > 0, "batch capacity must be positive");
  VS_CHECK_MSG(reserve > 0, "stage reserve cap must be positive");
  VS_CHECK_MSG(rank >= 0, "transport mode needs the owning rank");
  buf_.reserve(std::min<size_t>(capacity, reserve_));
}

BatchStage::~BatchStage() {
  if (buf_.empty()) return;
  g_unflushed_records.fetch_add(buf_.size(), std::memory_order_relaxed);
  try {
    flush();
  } catch (...) {
    // Destructors must not throw. The records were already counted as
    // unflushed above, and flush() detached them from the buffer before
    // shipping, so nothing can double-ship on a later teardown path.
  }
}

uint64_t BatchStage::unflushed_records() {
  return g_unflushed_records.load(std::memory_order_relaxed);
}

void BatchStage::push(const SliceRecord& rec) {
  VS_OBS_ONLY(if (obs::enabled()) StageInstruments::get().records.add();)
  buf_.push_back(rec);
  if (buf_.size() >= capacity_) flush();
}

void BatchStage::ship(const RecordBatch& batch) {
  VS_OBS_SCOPED_STAGE(obs::Stage::Staging);
  VS_OBS_ONLY(if (obs::enabled()) {
    auto& inst = StageInstruments::get();
    inst.batches.add();
    inst.batch_records.record(static_cast<double>(batch.size()));
  })
  if (transport_ != nullptr) {
    // The batch ships when its newest record completes; records accumulate
    // in time order per rank, but scan the contiguous t_end column for the
    // max to stay robust to ties (clamped at 0 as before SoA staging).
    const double now = std::max(0.0, batch.max_t_end());
    if (!transport_->ship(rank_, batch, now)) lost_records_ += batch.size();
    ++shipped_batches_;
  } else if (collector_ != nullptr) {
    collector_->ingest(batch);
    ++shipped_batches_;
  }
}

void BatchStage::flush() {
  if (buf_.empty()) return;
  // Detach the staged records before shipping: if ship() throws mid-way,
  // a second flush() (or the destructor's) must not ship them again —
  // flushing is idempotent per record, never at-least-once.
  RecordBatch batch;
  std::swap(batch, buf_);
  buf_.reserve(std::min<size_t>(capacity_, reserve_));
  ship(batch);
}

}  // namespace vsensor::rt
