#include "runtime/slicer.hpp"

#include <cmath>

#include "support/error.hpp"

namespace vsensor::rt {

SliceAccumulator::SliceAccumulator(int sensor_id, int rank, double slice_seconds)
    : sensor_id_(sensor_id), rank_(rank), slice_seconds_(slice_seconds) {
  VS_CHECK_MSG(slice_seconds > 0.0, "slice length must be positive");
}

SliceRecord SliceAccumulator::make_record() const {
  SliceRecord rec;
  rec.sensor_id = sensor_id_;
  rec.rank = rank_;
  rec.t_begin = static_cast<double>(slice_index_) * slice_seconds_;
  rec.t_end = rec.t_begin + slice_seconds_;
  rec.avg_duration = sum_ / static_cast<double>(count_);
  rec.min_duration = min_;
  rec.count = count_;
  rec.metric = static_cast<float>(metric_sum_ / static_cast<double>(count_));
  return rec;
}

std::optional<SliceRecord> SliceAccumulator::add(double end_time, double duration,
                                                 double metric) {
  VS_CHECK_MSG(duration >= 0.0, "negative sensor duration");
  const auto idx = static_cast<int64_t>(std::floor(end_time / slice_seconds_));
  std::optional<SliceRecord> completed;
  if (idx != slice_index_ && count_ > 0) {
    completed = make_record();
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    metric_sum_ = 0.0;
    count_ = 0;
  }
  slice_index_ = idx;
  sum_ += duration;
  min_ = std::min(min_, duration);
  metric_sum_ += metric;
  ++count_;
  return completed;
}

std::optional<SliceRecord> SliceAccumulator::flush() {
  if (count_ == 0) return std::nullopt;
  auto rec = make_record();
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  metric_sum_ = 0.0;
  count_ = 0;
  return rec;
}

BatchStage::BatchStage(Collector* collector, size_t capacity)
    : collector_(collector), capacity_(capacity) {
  VS_CHECK_MSG(capacity > 0, "batch capacity must be positive");
  buf_.reserve(std::min<size_t>(capacity, 4096));
}

void BatchStage::push(const SliceRecord& rec) {
  buf_.push_back(rec);
  if (buf_.size() >= capacity_) flush();
}

void BatchStage::flush() {
  if (buf_.empty()) return;
  if (collector_ != nullptr) {
    collector_->ingest(buf_);
    ++shipped_batches_;
  }
  buf_.clear();
}

}  // namespace vsensor::rt
