#include "runtime/detector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "runtime/record_batch.hpp"
#include "support/error.hpp"
#include "support/simd.hpp"

namespace vsensor::rt {

Detector::Detector(DetectorConfig cfg) : cfg_(cfg) {
  VS_CHECK_MSG(cfg_.matrix_resolution > 0.0, "matrix resolution must be positive");
  VS_CHECK_MSG(cfg_.variance_threshold > 0.0 && cfg_.variance_threshold <= 1.0,
               "variance threshold must be in (0, 1]");
}

int Detector::group_of(float metric) const {
  if (cfg_.metric_bucket_width <= 0.0) return 0;
  return static_cast<int>(
      std::floor(static_cast<double>(metric) / cfg_.metric_bucket_width));
}

std::vector<double> Detector::normalize_records(
    std::span<const SliceRecord> records) const {
  // Group by dynamic-rule metric bucket; the fastest record of each group is
  // the group's standard time (§5.2-§5.3). Degenerate records never set a
  // standard: a zero-duration slice as the group minimum would zero every
  // score in the group.
  if (cfg_.metric_bucket_width <= 0.0) {
    // Single-group fast path (dynamic rules off, the default): gather the
    // duration column once, then the min-standard scan and the divide are
    // both SIMD passes over contiguous memory.
    const size_t n = records.size();
    std::vector<double> avg(n);
    for (size_t i = 0; i < n; ++i) avg[i] = records[i].avg_duration;
    const double fastest = simd::min_above(avg.data(), n, kMinStandardTime);
    std::vector<double> normalized(n, 0.0);
    if (fastest != std::numeric_limits<double>::infinity()) {
      simd::normalize_uniform(fastest, avg.data(), n, kMinStandardTime,
                              normalized.data());
      // Degenerate records score 0.0 — broken, not perfect.
      for (size_t i = 0; i < n; ++i) {
        if (!(avg[i] >= kMinStandardTime)) normalized[i] = 0.0;
      }
    }
    return normalized;
  }
  std::map<int, double> standard;
  for (const auto& rec : records) {
    if (is_degenerate(rec)) continue;
    const int g = group_of(rec.metric);
    auto [it, inserted] = standard.try_emplace(g, rec.avg_duration);
    if (!inserted) it->second = std::min(it->second, rec.avg_duration);
  }
  std::vector<double> normalized;
  normalized.reserve(records.size());
  for (const auto& rec : records) {
    if (is_degenerate(rec)) {
      normalized.push_back(0.0);  // broken measurement, not a perfect one
      continue;
    }
    const double std_time =
        std::max(standard.at(group_of(rec.metric)), kMinStandardTime);
    normalized.push_back(std_time / rec.avg_duration);
  }
  return normalized;
}

AnalysisResult Detector::analyze(const Collector& collector, int ranks,
                                 double run_time) const {
  // Locked view instead of Collector::records(): the full record set is
  // materialized exactly once per analysis.
  std::vector<SliceRecord> all;
  all.reserve(collector.record_count());
  collector.visit_records([&all](std::span<const SliceRecord> seg) {
    all.insert(all.end(), seg.begin(), seg.end());
  });
  return analyze_records(all, collector.sensors(), ranks, run_time);
}

AnalysisResult Detector::analyze_until(const Collector& collector, int ranks,
                                       double horizon) const {
  std::vector<SliceRecord> window;
  collector.visit_records([&window, horizon](std::span<const SliceRecord> seg) {
    for (const auto& rec : seg) {
      if (rec.t_end <= horizon) window.push_back(rec);
    }
  });
  return analyze_records(window, collector.sensors(), ranks, horizon);
}

AnalysisResult Detector::analyze_records(std::span<const SliceRecord> records,
                                         const std::vector<SensorInfo>& sensors,
                                         int ranks, double run_time) const {
  return analyze_batch(RecordBatch::from_aos(records), sensors, ranks,
                       run_time);
}

AnalysisResult Detector::analyze_batch(const RecordBatch& records,
                                       const std::vector<SensorInfo>& sensors,
                                       int ranks, double run_time) const {
  VS_CHECK_MSG(ranks > 0, "need at least one rank");
  VS_CHECK_MSG(run_time > 0.0, "run time must be positive");
  VS_OBS_SCOPED_STAGE(obs::Stage::DetectBatch);
  VS_OBS_ONLY(obs::ScopedSpan vs_obs_span("analyze_records", "detect");
              if (obs::enabled()) {
                vs_obs_span.set_virtual(0.0, run_time);
                auto& reg = obs::MetricsRegistry::global();
                reg.counter("detect.batch_analyses").add();
                reg.counter("detect.records_analyzed").add(records.size());
              })

  const int buckets =
      std::max(1, static_cast<int>(std::ceil(run_time / cfg_.matrix_resolution)));
  AnalysisResult result{
      .matrices = {PerformanceMatrix(ranks, buckets, cfg_.matrix_resolution),
                   PerformanceMatrix(ranks, buckets, cfg_.matrix_resolution),
                   PerformanceMatrix(ranks, buckets, cfg_.matrix_resolution)},
      .events = {},
      .flagged = {},
      .run_time = run_time,
      .ranks = ranks,
      .stale_ranks = {},
  };

  const size_t n = records.size();
  const int32_t* ids = records.sensor_id.data();
  const int32_t* rk = records.rank.data();
  const float* metric = records.metric.data();
  const double* avg = records.avg_duration.data();
  const double* t_begin = records.t_begin.data();
  const double* t_end = records.t_end.data();
  const uint32_t* count = records.count.data();
  const bool grouped = cfg_.metric_bucket_width > 0.0;

  // Pass 1 — standard time per (sensor, dynamic group): minimum
  // avg_duration over all ranks — "Each v-sensor compares their records to
  // the fastest record". Degenerate records are skipped outright: they
  // would either pose as perfect (normalized 1.0) or, as a group minimum,
  // zero the whole group. With dynamic rules off (the default) the group
  // is always 0, so the standards live in a flat per-sensor array and the
  // scan touches only the contiguous id and duration columns.
  std::vector<double> flat_standard;
  std::map<std::pair<int, int>, double> grouped_standard;
  std::vector<uint32_t> per_sensor_count(sensors.size(), 0);
  {
    VS_OBS_SCOPED_STAGE(obs::Stage::Normalize);
    if (!grouped) {
      flat_standard.assign(sensors.size(),
                           std::numeric_limits<double>::infinity());
      for (size_t i = 0; i < n; ++i) {
        const double a = avg[i];
        if (!(a >= kMinStandardTime)) continue;
        const int id = ids[i];
        VS_CHECK_MSG(id >= 0 && static_cast<size_t>(id) < sensors.size(),
                     "record references unknown sensor");
        if (a < flat_standard[static_cast<size_t>(id)]) {
          flat_standard[static_cast<size_t>(id)] = a;
        }
        per_sensor_count[static_cast<size_t>(id)] += 1;
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        const double a = avg[i];
        if (!(a >= kMinStandardTime)) continue;
        const int id = ids[i];
        VS_CHECK_MSG(id >= 0 && static_cast<size_t>(id) < sensors.size(),
                     "record references unknown sensor");
        const auto key = std::make_pair(id, group_of(metric[i]));
        auto [it, inserted] = grouped_standard.try_emplace(key, a);
        if (!inserted) it->second = std::min(it->second, a);
        per_sensor_count[static_cast<size_t>(id)] += 1;
      }
    }
  }

  // Pass 2 — score every admissible record. The gather fills each record's
  // standard time; the normalization itself is then one vectorized
  // exactly-rounded divide over the whole batch (invalid lanes compute a
  // value the accumulation loop never reads).
  std::vector<double> std_times(n, 0.0);
  std::vector<uint8_t> admissible(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const double a = avg[i];
    if (!(a >= kMinStandardTime)) continue;
    const auto id = static_cast<size_t>(ids[i]);
    if (per_sensor_count[id] < cfg_.min_records) continue;
    std_times[i] = grouped
                       ? grouped_standard.at({ids[i], group_of(metric[i])})
                       : flat_standard[id];
    admissible[i] = 1;
  }
  std::vector<double> normalized(n);
  simd::normalize(std_times.data(), avg, n, kMinStandardTime,
                  normalized.data());

  for (size_t i = 0; i < n; ++i) {
    if (!admissible[i]) continue;
    const auto type = sensors[static_cast<size_t>(ids[i])].type;
    auto& matrix = result.matrices[static_cast<size_t>(type)];
    const int rank = rk[i];
    if (rank >= 0 && rank < ranks) {
      const double mid = 0.5 * (t_begin[i] + t_end[i]);
      matrix.accumulate(rank, matrix.bucket_of(mid), normalized[i],
                        static_cast<double>(count[i]));
    }
    if (normalized[i] < cfg_.variance_threshold) {
      result.flagged.push_back(
          {records.get(i), normalized[i], grouped ? group_of(metric[i]) : 0});
    }
  }

  finalize_analysis(result, cfg_);
  return result;
}

void finalize_analysis(AnalysisResult& result, const DetectorConfig& cfg) {
  for (auto& matrix : result.matrices) matrix.finalize();

  for (int t = 0; t < kSensorTypeCount; ++t) {
    auto events =
        extract_events(result.matrices[static_cast<size_t>(t)],
                       static_cast<SensorType>(t), cfg.variance_threshold,
                       cfg.min_event_cells);
    events = merge_events(std::move(events),
                          cfg.merge_gap_buckets * cfg.matrix_resolution);
    result.events.insert(result.events.end(), events.begin(), events.end());
  }
  // Cross-reference: a Network event that overlaps a Computation event in
  // time but on disjoint ranks is most likely collective-wait skew — its
  // ranks are the victims waiting for the slow ranks of the compute event.
  for (auto& net : result.events) {
    if (net.type != SensorType::Network) continue;
    for (const auto& comp : result.events) {
      if (comp.type != SensorType::Computation) continue;
      const bool ranks_disjoint =
          net.rank_end < comp.rank_begin || comp.rank_end < net.rank_begin;
      const double overlap = std::min(net.t_end, comp.t_end) -
                             std::max(net.t_begin, comp.t_begin);
      if (ranks_disjoint && overlap > 0.5 * (net.t_end - net.t_begin)) {
        net.likely_wait_on_slow_ranks = true;
        break;
      }
    }
  }

  // Most severe first.
  std::sort(result.events.begin(), result.events.end(),
            [](const VarianceEvent& a, const VarianceEvent& b) {
              return a.severity < b.severity;
            });
}

std::vector<VarianceEvent> extract_events(const PerformanceMatrix& matrix,
                                          SensorType type, double threshold,
                                          uint32_t min_cells) {
  const int R = matrix.ranks();
  const int B = matrix.buckets();
  std::vector<int> component(static_cast<size_t>(R) * static_cast<size_t>(B), -1);
  auto idx = [B](int r, int b) {
    return static_cast<size_t>(r) * static_cast<size_t>(B) + static_cast<size_t>(b);
  };
  auto is_low = [&](int r, int b) {
    return matrix.has(r, b) && matrix.at(r, b) < threshold;
  };

  std::vector<VarianceEvent> events;
  std::vector<std::pair<int, int>> stack;
  for (int r = 0; r < R; ++r) {
    for (int b = 0; b < B; ++b) {
      if (!is_low(r, b) || component[idx(r, b)] >= 0) continue;
      // Flood-fill one connected component of low cells (8-connectivity, so
      // diagonal speckle merges into one region).
      const int comp_id = static_cast<int>(events.size());
      VarianceEvent ev;
      ev.type = type;
      ev.rank_begin = r;
      ev.rank_end = r;
      int bucket_lo = b;
      int bucket_hi = b;
      double severity_sum = 0.0;
      stack.push_back({r, b});
      component[idx(r, b)] = comp_id;
      while (!stack.empty()) {
        const auto [cr, cb] = stack.back();
        stack.pop_back();
        severity_sum += matrix.at(cr, cb);
        ev.cells += 1;
        ev.rank_begin = std::min(ev.rank_begin, cr);
        ev.rank_end = std::max(ev.rank_end, cr);
        bucket_lo = std::min(bucket_lo, cb);
        bucket_hi = std::max(bucket_hi, cb);
        for (int dr = -1; dr <= 1; ++dr) {
          for (int db = -1; db <= 1; ++db) {
            const int nr = cr + dr;
            const int nb = cb + db;
            if (nr < 0 || nr >= R || nb < 0 || nb >= B) continue;
            if (!is_low(nr, nb) || component[idx(nr, nb)] >= 0) continue;
            component[idx(nr, nb)] = comp_id;
            stack.push_back({nr, nb});
          }
        }
      }
      ev.t_begin = bucket_lo * matrix.resolution();
      ev.t_end = (bucket_hi + 1) * matrix.resolution();
      ev.severity = severity_sum / static_cast<double>(ev.cells);
      events.push_back(ev);
    }
  }
  std::erase_if(events, [min_cells](const VarianceEvent& e) {
    return e.cells < min_cells;
  });
  return events;
}

std::vector<Detector::SeriesPoint> Detector::component_series(
    const Collector& collector, SensorType type, double resolution,
    double run_time) const {
  VS_CHECK_MSG(resolution > 0.0, "series resolution must be positive");
  VS_CHECK_MSG(run_time > 0.0, "run time must be positive");
  const auto& sensors = collector.sensors();

  // Per-(sensor, group) standard times, as in analyze_records. Two locked
  // passes over the shards instead of one full copy of the record set.
  std::map<std::pair<int, int>, double> standard;
  collector.visit_records([&](std::span<const SliceRecord> seg) {
    for (const auto& rec : seg) {
      if (is_degenerate(rec)) continue;
      const auto key = std::make_pair(rec.sensor_id, group_of(rec.metric));
      auto [it, inserted] = standard.try_emplace(key, rec.avg_duration);
      if (!inserted) it->second = std::min(it->second, rec.avg_duration);
    }
  });

  const auto buckets = static_cast<size_t>(
      std::max(1, static_cast<int>(std::ceil(run_time / resolution))));
  std::vector<double> sum(buckets, 0.0);
  std::vector<uint32_t> count(buckets, 0);
  collector.visit_records([&](std::span<const SliceRecord> seg) {
    for (const auto& rec : seg) {
      VS_CHECK(rec.sensor_id >= 0 &&
               static_cast<size_t>(rec.sensor_id) < sensors.size());
      if (sensors[static_cast<size_t>(rec.sensor_id)].type != type) continue;
      if (is_degenerate(rec)) continue;
      const double std_time = std::max(
          standard.at({rec.sensor_id, group_of(rec.metric)}), kMinStandardTime);
      const double normalized = std_time / rec.avg_duration;
      const double mid = 0.5 * (rec.t_begin + rec.t_end);
      auto b = static_cast<size_t>(std::clamp(
          static_cast<int>(mid / resolution), 0, static_cast<int>(buckets) - 1));
      sum[b] += normalized * rec.count;
      count[b] += rec.count;
    }
  });
  std::vector<SeriesPoint> series(buckets);
  for (size_t b = 0; b < buckets; ++b) {
    series[b].t = static_cast<double>(b) * resolution;
    series[b].samples = count[b];
    if (count[b] > 0) series[b].perf = sum[b] / count[b];
  }
  return series;
}

std::vector<VarianceEvent> merge_events(std::vector<VarianceEvent> events,
                                        double gap_seconds) {
  std::sort(events.begin(), events.end(),
            [](const VarianceEvent& a, const VarianceEvent& b) {
              return a.t_begin < b.t_begin;
            });
  std::vector<VarianceEvent> merged;
  for (auto& ev : events) {
    bool absorbed = false;
    for (auto& m : merged) {
      const bool ranks_overlap =
          ev.rank_begin <= m.rank_end && m.rank_begin <= ev.rank_end;
      const bool time_close = ev.t_begin <= m.t_end + gap_seconds;
      if (m.type == ev.type && ranks_overlap && time_close) {
        const double total = static_cast<double>(m.cells + ev.cells);
        m.severity = (m.severity * m.cells + ev.severity * ev.cells) / total;
        m.t_begin = std::min(m.t_begin, ev.t_begin);
        m.t_end = std::max(m.t_end, ev.t_end);
        m.rank_begin = std::min(m.rank_begin, ev.rank_begin);
        m.rank_end = std::max(m.rank_end, ev.rank_end);
        m.cells += ev.cells;
        absorbed = true;
        break;
      }
    }
    if (!absorbed) merged.push_back(ev);
  }
  return merged;
}

std::string VarianceEvent::classify(double run_time, int total_ranks) const {
  const double time_span = (t_end - t_begin) / std::max(run_time, 1e-12);
  const double rank_span =
      static_cast<double>(rank_end - rank_begin + 1) / std::max(total_ranks, 1);
  const char* component = sensor_type_name(type);
  std::ostringstream os;
  if (type == SensorType::Network && likely_wait_on_slow_ranks) {
    os << "collective wait imbalance — these ranks are waiting for slow "
          "ranks elsewhere (see the computation events)";
  } else if (type == SensorType::Network && rank_span > 0.5) {
    os << "network performance degradation (shared interconnect, affects "
          "most ranks)";
  } else if (time_span > 0.9 && rank_span <= 0.5) {
    os << "persistent slow ranks — suspect a bad node hosting ranks "
       << rank_begin << "-" << rank_end;
  } else if (rank_span < 0.5) {
    os << "transient " << component
       << " interference on a subset of ranks (noise/zombie process?)";
  } else {
    os << "system-wide " << component << " slowdown";
  }
  return os.str();
}

std::string VarianceEvent::describe(double run_time, int total_ranks) const {
  std::ostringstream os;
  os << sensor_type_name(type) << " variance: ranks " << rank_begin << "-"
     << rank_end << ", t=[" << t_begin << "s, " << t_end << "s), perf "
     << severity << " of best — " << classify(run_time, total_ranks);
  return os.str();
}

std::vector<SliceRecord> drop_stale_ranks(std::span<const SliceRecord> records,
                                          std::span<const int> stale_ranks) {
  std::vector<SliceRecord> kept;
  kept.reserve(records.size());
  for (const auto& rec : records) {
    if (std::find(stale_ranks.begin(), stale_ranks.end(), rec.rank) !=
        stale_ranks.end()) {
      continue;
    }
    kept.push_back(rec);
  }
  return kept;
}

const char* sensor_type_name(SensorType type) {
  switch (type) {
    case SensorType::Computation:
      return "Computation";
    case SensorType::Network:
      return "Network";
    case SensorType::IO:
      return "IO";
  }
  return "Unknown";
}

}  // namespace vsensor::rt
