// Struct-of-arrays record batches — the hot-path layout of the collection
// pipeline.
//
// A SliceRecord is 56 bytes, but every scoring/normalization kernel touches
// one or two fields per record: the min-standard scan reads avg_duration,
// normalization reads avg_duration and metric, the collector scatter reads
// sensor_id. In array-of-structs form each of those scans strides 56 bytes
// per touched double and wastes 6/7 of every cache line; in
// struct-of-arrays form the same scan streams contiguous memory and
// vectorizes (support/simd.hpp). The staging buffer (BatchStage), the
// collector ingest scatter, and both detectors' scoring paths therefore
// operate on RecordBatch; the AoS SliceRecord remains the wire/storage unit
// (journal frames, session files, ring stores), with loss-free conversion
// in both directions. Conversion round-trips are bit-identical — pinned by
// tests/test_record_batch.cpp across all eight mini-apps.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/types.hpp"

namespace vsensor::rt {

class RecordBatch {
 public:
  RecordBatch() = default;

  size_t size() const { return sensor_id.size(); }
  bool empty() const { return sensor_id.empty(); }

  void reserve(size_t n);
  void clear();

  /// Scatter one AoS record into the column arrays.
  void push_back(const SliceRecord& rec);

  /// Append a contiguous AoS span (one column-wise pass per field).
  void append(std::span<const SliceRecord> records);

  /// Gather record i back into AoS form. Bit-identical round trip.
  SliceRecord get(size_t i) const;

  /// Gather the whole batch into AoS form (wire/storage layout).
  std::vector<SliceRecord> to_aos() const;

  static RecordBatch from_aos(std::span<const SliceRecord> records);

  /// Fastest non-degenerate avg_duration in the batch (+inf when none):
  /// the min-standard scan, vectorized over the contiguous column.
  double min_standard() const;

  /// Latest slice end in the batch (ship-time scan), -inf when empty.
  double max_t_end() const;

  // Column arrays, index-aligned: element i of every column is record i.
  std::vector<int32_t> sensor_id;
  std::vector<int32_t> rank;
  std::vector<float> metric;
  std::vector<float> reserved;
  std::vector<double> t_begin;
  std::vector<double> t_end;
  std::vector<double> avg_duration;
  std::vector<double> min_duration;
  std::vector<uint32_t> count;
  std::vector<uint32_t> flags;
};

}  // namespace vsensor::rt
