// Per-rank sensor runtime: Tick/Tock probes, smoothing, auto-disable,
// batched transfer, and sense-distribution statistics (paper §4-§5).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "runtime/collector.hpp"
#include "runtime/slicer.hpp"
#include "runtime/types.hpp"
#include "support/histogram.hpp"

namespace vsensor::rt {

/// Sense-distribution statistics of one rank (paper Fig 15): how long
/// sensors execute (duration), how big the gaps between senses are
/// (interval), and what fraction of run time is covered.
struct SenseStats {
  double sense_time = 0.0;   ///< sum of all sense durations
  uint64_t sense_count = 0;  ///< number of senses
  BoundedHistogram durations = make_sense_length_histogram();
  BoundedHistogram intervals = make_sense_length_histogram();
  double last_sense_end = -1.0;
  double max_duration = 0.0;  ///< longest single sense
  double max_interval = 0.0;  ///< longest gap with no sensor executing

  void merge(const SenseStats& other);
  double coverage(double total_time) const;   ///< sense_time / total_time
  double frequency(double total_time) const;  ///< sense_count / total_time (Hz)
};

/// One per rank. Not thread-safe (each rank thread owns exactly one).
class SensorRuntime {
 public:
  /// `now` reads the rank's virtual clock; `charge` advances it by the probe
  /// overhead (so instrumentation cost shows up in measured run time exactly
  /// as real probes would).
  using NowFn = std::function<double()>;
  using ChargeFn = std::function<void(double)>;

  SensorRuntime(RuntimeConfig cfg, int rank, Collector* collector, NowFn now,
                ChargeFn charge);

  /// Transport mode: completed slices ship through the resilient batch
  /// transport as this rank's channel instead of straight into a collector.
  SensorRuntime(RuntimeConfig cfg, int rank, BatchTransport& transport,
                NowFn now, ChargeFn charge);

  ~SensorRuntime();

  SensorRuntime(const SensorRuntime&) = delete;
  SensorRuntime& operator=(const SensorRuntime&) = delete;

  /// Register one sensor; ids are dense and assigned in call order, which is
  /// identical on every rank (instrumentation is static).
  int register_sensor(SensorInfo info);

  /// Enter the sensor snippet.
  void tick(int id);

  /// Leave the sensor snippet. `metric` is the optional dynamic-rule metric
  /// (e.g. cache-miss rate) attached to the execution (§5.3, Fig 13).
  void tock(int id, double metric = 0.0);

  /// Emit in-progress slices and drain the batch buffer. Call once per rank
  /// at the end of the run.
  void flush();

  // --- introspection (tests / Table 1 harness) ---
  bool disabled(int id) const;
  uint64_t execution_count(int id) const;
  const SenseStats& sense_stats() const { return sense_stats_; }
  const std::vector<SensorInfo>& sensors() const { return infos_; }
  uint64_t records_emitted() const { return records_emitted_; }
  /// Records the transport refused permanently (transport mode only).
  uint64_t records_lost() const { return stage_.lost_records(); }

  // --- intra-process on-line detection (§5.3) ---
  // Each emitted slice is compared against the sensor's standard time (its
  // fastest slice so far); slices below the variance threshold are counted
  // as local variance flags — the per-process detection that runs inside
  // the probes, before any data reaches the analysis server.
  /// Fastest slice average seen so far; 0 before the first slice.
  double standard_time(int id) const;
  /// Slices flagged as variance on this rank (all sensors).
  uint64_t local_variance_flags() const { return local_flags_; }

 private:
  struct State;
  void emit(const SliceRecord& rec);

  RuntimeConfig cfg_;
  int rank_;
  NowFn now_;
  ChargeFn charge_;
  std::vector<SensorInfo> infos_;
  std::vector<State> states_;
  BatchStage stage_;  ///< per-rank staging buffer (§5.4 batched transfer)
  SenseStats sense_stats_;
  uint64_t records_emitted_ = 0;
  uint64_t local_flags_ = 0;
};

/// RAII probe pair: `ScopedSense s{rt, id};` brackets a snippet.
class ScopedSense {
 public:
  ScopedSense(SensorRuntime& rt, int id, double metric = 0.0)
      : rt_(rt), id_(id), metric_(metric) {
    rt_.tick(id_);
  }
  ~ScopedSense() { rt_.tock(id_, metric_); }

  ScopedSense(const ScopedSense&) = delete;
  ScopedSense& operator=(const ScopedSense&) = delete;

 private:
  SensorRuntime& rt_;
  int id_;
  double metric_;
};

}  // namespace vsensor::rt
