// Session persistence: the paper's shared-file transport (§5.4 — processes
// report "by sending messages to analysis-server or by updating shared
// files"). A session file carries the sensor table and every slice record,
// so analysis and visualization can run offline (tools/vsensor-report).
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "io/vfs.hpp"
#include "runtime/collector.hpp"
#include "runtime/transport.hpp"
#include "runtime/types.hpp"

namespace vsensor::rt {

struct Session {
  int ranks = 0;
  double run_time = 0.0;
  std::vector<SensorInfo> sensors;
  std::vector<SliceRecord> records;
  /// Per-rank transport channel counters (v2 sessions; empty for v1 or
  /// runs that bypassed the transport). When present, has `ranks` entries.
  std::vector<RankChannelStats> transport;
  /// Field-wise sum over `transport` (recomputed on load).
  RankChannelStats transport_totals;
  /// Ranks the transport declared stale at end of run (v2 sessions).
  std::vector<int> stale_ranks;
  /// Structured integrity warnings (v3 sessions): when a damaged file was
  /// salvaged, each entry describes one reason loading stopped early —
  /// the data above is the valid prefix. Empty = clean load.
  std::vector<std::string> warnings;
  /// Lines dropped by salvage (the damaged line and everything after it).
  uint64_t salvaged_lines = 0;

  bool has_transport() const { return !transport.empty(); }
  bool clean() const { return warnings.empty(); }
};

/// Text format, line-oriented:
///   vsensor-session 3
///   ranks <N> run_time <seconds>
///   sensor <id> <type> <line> <name> (name may contain spaces; file is
///                                     URL-free token, stored after line)
///   record <sensor> <rank> <t_begin> <t_end> <avg> <min> <count> <metric> <flags>
///   transport <rank> <sent> <delivered> <lost> <rec_delivered> <rec_lost>
///             <retries> <dups> <delayed> <wire_bytes> <backoff_s>
///             <last_delivery_t> <next_seq>
///   stale <rank>
/// Version 3 appends an integrity suffix ` #xxxxxxxx` (CRC32 of the line
/// content, 8 hex digits) to every line after the magic line. Loading a
/// v3 file salvages the valid prefix of a truncated or corrupted file:
/// the first torn, CRC-damaged, or malformed line stops the load with a
/// structured warning in Session::warnings instead of an exception.
/// Version 1 (no transport/stale lines) and version 2 (no CRC suffix)
/// files still load, with their original strict error behavior.
void save_session(std::ostream& out, const Session& session);
void save_session_file(const std::string& path, const Collector& collector,
                       int ranks, double run_time);
/// As above, additionally persisting per-rank transport counters and the
/// stale-rank list (one `transport` line per entry, in rank order). Bytes
/// route through `vfs` (null = real filesystem); I/O failure still throws
/// Error — a session export is an explicit user ask, not a background
/// durability write the pipeline can degrade around.
void save_session_file(const std::string& path, const Collector& collector,
                       int ranks, double run_time,
                       std::span<const RankChannelStats> transport,
                       std::span<const int> stale_ranks,
                       io::Vfs* vfs = nullptr);

/// Throws vsensor::Error on malformed input.
Session load_session(std::istream& in);
Session load_session_file(const std::string& path);

}  // namespace vsensor::rt
