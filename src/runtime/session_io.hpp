// Session persistence: the paper's shared-file transport (§5.4 — processes
// report "by sending messages to analysis-server or by updating shared
// files"). A session file carries the sensor table and every slice record,
// so analysis and visualization can run offline (tools/vsensor-report).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/collector.hpp"
#include "runtime/types.hpp"

namespace vsensor::rt {

struct Session {
  int ranks = 0;
  double run_time = 0.0;
  std::vector<SensorInfo> sensors;
  std::vector<SliceRecord> records;
};

/// Text format, line-oriented:
///   vsensor-session 1
///   ranks <N> run_time <seconds>
///   sensor <id> <type> <line> <name> (name may contain spaces; file is
///                                     URL-free token, stored after line)
///   record <sensor> <rank> <t_begin> <t_end> <avg> <min> <count> <metric> <flags>
void save_session(std::ostream& out, const Session& session);
void save_session_file(const std::string& path, const Collector& collector,
                       int ranks, double run_time);

/// Throws vsensor::Error on malformed input.
Session load_session(std::istream& in);
Session load_session_file(const std::string& path);

}  // namespace vsensor::rt
