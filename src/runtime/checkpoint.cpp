#include "runtime/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "support/binio.hpp"
#include "support/crc32.hpp"
#include "support/error.hpp"

namespace vsensor::rt {

namespace {

constexpr const char* kHeader = "vsensor-checkpoint 1\n";

#if VSENSOR_OBS
struct CheckpointInstruments {
  obs::Counter& saves;
  obs::Counter& bytes;

  static CheckpointInstruments& get() {
    auto& reg = obs::MetricsRegistry::global();
    static CheckpointInstruments inst{reg.counter("checkpoint.saves"),
                                      reg.counter("checkpoint.bytes_written")};
    return inst;
  }
};
#endif

template <typename T>
void put(std::string& out, T v) {
  put_raw(out, v);
}

// Containers serialize as u64 count + entries; every map key/value is a
// fixed-width primitive, so sizes are exact and the reader can validate
// counts against the remaining byte budget before allocating.

void put_counters(std::string& out, const Collector::Counters& c) {
  put(out, c.ingested);
  put(out, c.dropped);
  put(out, c.taken);
  put(out, c.bytes);
  put(out, c.batches);
}

bool read_counters(ByteReader& in, Collector::Counters* c) {
  return in.read(&c->ingested) && in.read(&c->dropped) && in.read(&c->taken) &&
         in.read(&c->bytes) && in.read(&c->batches);
}

std::string encode_payload(const ServerCheckpoint& ckpt) {
  std::string out;
  put(out, ckpt.sensor_count);
  put(out, ckpt.ranks);
  put(out, ckpt.run_time);
  put_counters(out, ckpt.collector);

  put(out, static_cast<uint64_t>(ckpt.watermarks.size()));
  for (const auto& wm : ckpt.watermarks) {
    put(out, wm.contiguous);
    put(out, static_cast<uint64_t>(wm.ahead.size()));
    for (uint64_t seq : wm.ahead) put(out, seq);
  }

  const auto& d = ckpt.detector;
  put(out, static_cast<uint64_t>(d.standard.size()));
  for (const auto& [key, v] : d.standard) {
    put(out, static_cast<int32_t>(key.first));
    put(out, static_cast<int32_t>(key.second));
    put(out, v);
  }
  put(out, static_cast<uint64_t>(d.rank_standard.size()));
  for (const auto& [key, v] : d.rank_standard) {
    put(out, static_cast<int32_t>(std::get<0>(key)));
    put(out, static_cast<int32_t>(std::get<1>(key)));
    put(out, static_cast<int32_t>(std::get<2>(key)));
    put(out, v);
  }
  put(out, static_cast<uint64_t>(d.cells.size()));
  for (const auto& [key, cell] : d.cells) {
    put(out, static_cast<int32_t>(std::get<0>(key)));
    put(out, static_cast<int32_t>(std::get<1>(key)));
    put(out, static_cast<int32_t>(std::get<2>(key)));
    put(out, static_cast<int32_t>(std::get<3>(key)));
    put(out, cell.weight_over_avg);
    put(out, cell.weight);
  }
  put(out, static_cast<uint64_t>(d.stats.size()));
  for (const auto& st : d.stats) {
    put(out, st.count);
    put(out, st.mean);
    put(out, st.m2);
  }
  put(out, static_cast<uint64_t>(d.sensor_records.size()));
  for (uint64_t n : d.sensor_records) put(out, n);
  put(out, static_cast<uint64_t>(d.last.size()));
  for (const auto& [key, slice] : d.last) {
    put(out, static_cast<int32_t>(key.first));
    put(out, static_cast<int32_t>(key.second));
    put(out, slice.t_end);
    put(out, slice.avg_duration);
    put(out, slice.normalized);
  }
  put(out, static_cast<uint64_t>(d.stale.size()));
  for (int rank : d.stale) put(out, static_cast<int32_t>(rank));
  put(out, d.observed);
  put(out, d.stale_records);
  put(out, d.degenerate_records);
  put(out, d.intra_flags);
  put(out, d.inter_flags);
  return out;
}

/// Validate a declared container count against the bytes actually left,
/// so a corrupt count can never drive a huge allocation.
bool plausible(const ByteReader& in, uint64_t count, size_t entry_bytes) {
  return count <= (in.len - in.pos) / entry_bytes;
}

bool parse_payload(const char* data, size_t len, ServerCheckpoint* ckpt) {
  ByteReader in{data, len};
  if (!in.read(&ckpt->sensor_count) || !in.read(&ckpt->ranks) ||
      !in.read(&ckpt->run_time) || !read_counters(in, &ckpt->collector)) {
    return false;
  }

  uint64_t n = 0;
  if (!in.read(&n) || !plausible(in, n, 16)) return false;
  ckpt->watermarks.resize(n);
  for (auto& wm : ckpt->watermarks) {
    uint64_t ahead = 0;
    if (!in.read(&wm.contiguous) || !in.read(&ahead) ||
        !plausible(in, ahead, 8)) {
      return false;
    }
    for (uint64_t i = 0; i < ahead; ++i) {
      uint64_t seq = 0;
      if (!in.read(&seq)) return false;
      wm.ahead.insert(seq);
    }
  }

  auto& d = ckpt->detector;
  if (!in.read(&n) || !plausible(in, n, 16)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    int32_t a = 0, b = 0;
    double v = 0.0;
    if (!in.read(&a) || !in.read(&b) || !in.read(&v)) return false;
    d.standard[{a, b}] = v;
  }
  if (!in.read(&n) || !plausible(in, n, 20)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    int32_t a = 0, b = 0, c = 0;
    double v = 0.0;
    if (!in.read(&a) || !in.read(&b) || !in.read(&c) || !in.read(&v)) {
      return false;
    }
    d.rank_standard[{a, b, c}] = v;
  }
  if (!in.read(&n) || !plausible(in, n, 32)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    int32_t a = 0, b = 0, c = 0, e = 0;
    StreamingDetector::CellSums cell;
    if (!in.read(&a) || !in.read(&b) || !in.read(&c) || !in.read(&e) ||
        !in.read(&cell.weight_over_avg) || !in.read(&cell.weight)) {
      return false;
    }
    d.cells[{a, b, c, e}] = cell;
  }
  if (!in.read(&n) || !plausible(in, n, 24)) return false;
  d.stats.resize(n);
  for (auto& st : d.stats) {
    if (!in.read(&st.count) || !in.read(&st.mean) || !in.read(&st.m2)) {
      return false;
    }
  }
  if (!in.read(&n) || !plausible(in, n, 8)) return false;
  d.sensor_records.resize(n);
  for (auto& cnt : d.sensor_records) {
    if (!in.read(&cnt)) return false;
  }
  if (!in.read(&n) || !plausible(in, n, 32)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    int32_t a = 0, b = 0;
    StreamingDetector::LastSlice slice;
    if (!in.read(&a) || !in.read(&b) || !in.read(&slice.t_end) ||
        !in.read(&slice.avg_duration) || !in.read(&slice.normalized)) {
      return false;
    }
    d.last[{a, b}] = slice;
  }
  if (!in.read(&n) || !plausible(in, n, 4)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    int32_t rank = 0;
    if (!in.read(&rank)) return false;
    d.stale.insert(rank);
  }
  if (!in.read(&d.observed) || !in.read(&d.stale_records) ||
      !in.read(&d.degenerate_records) || !in.read(&d.intra_flags) ||
      !in.read(&d.inter_flags)) {
    return false;
  }
  // Trailing bytes after a structurally complete payload are corruption.
  return in.done();
}

}  // namespace

std::string encode_checkpoint(const ServerCheckpoint& ckpt) {
  const std::string payload = encode_payload(ckpt);
  std::string out = kHeader;
  put(out, static_cast<uint64_t>(payload.size()));
  put(out, crc32(payload));
  out += payload;
  return out;
}

CheckpointSaveResult try_save_checkpoint(const std::string& path,
                                         const ServerCheckpoint& ckpt,
                                         io::Vfs* vfs) {
  VS_OBS_SCOPED_STAGE(obs::Stage::Durability);
  auto& fs = io::resolve(vfs);
  const std::string bytes = encode_checkpoint(ckpt);
  const std::string tmp = path + ".tmp";
  CheckpointSaveResult result;
  {
    std::string err;
    auto out = fs.open_truncate(tmp, &err);
    if (out == nullptr) {
      result.error = err.empty() ? "cannot open checkpoint for writing: " + tmp
                                 : err;
      return result;
    }
    const auto w = out->append(bytes.data(), bytes.size());
    const auto f = w.ok ? out->flush() : io::IoResult::success();
    if (!w.ok || !f.ok) {
      result.error = !w.ok ? w.error : f.error;
      out.reset();
      // A half-written tmp is garbage; sweep it now so failure leaves no
      // residue. If even the sweep fails, tell the caller it is there.
      result.tmp_left = !fs.remove_file(tmp).ok;
      return result;
    }
  }
  // Atomic publish: the file at `path` is always absent or complete.
  const auto r = fs.rename_file(tmp, path);
  if (!r.ok) {
    // The complete tmp stays behind on purpose — this is the
    // crash-in-the-publish-window shape recovery must sweep.
    result.error = r.error.empty()
                       ? "cannot rename checkpoint into place: " + path
                       : r.error;
    result.tmp_left = true;
    return result;
  }
  VS_OBS_ONLY(if (obs::enabled()) {
    auto& inst = CheckpointInstruments::get();
    inst.saves.add();
    inst.bytes.add(bytes.size());
  })
  result.ok = true;
  return result;
}

void save_checkpoint(const std::string& path, const ServerCheckpoint& ckpt) {
  const auto r = try_save_checkpoint(path, ckpt);
  if (!r.ok) throw Error(r.error);
}

CheckpointLoad parse_checkpoint(const std::string& bytes) {
  CheckpointLoad load;
  load.total_bytes = bytes.size();
  const size_t header_len = std::strlen(kHeader);
  if (bytes.size() < header_len ||
      bytes.compare(0, header_len, kHeader) != 0) {
    load.warning = "checkpoint header invalid";
    return load;
  }
  uint64_t payload_len = 0;
  uint32_t crc = 0;
  ByteReader framing{bytes.data() + header_len, bytes.size() - header_len};
  if (!framing.read(&payload_len) || !framing.read(&crc) ||
      !framing.has(payload_len) ||
      framing.len - framing.pos != payload_len) {
    load.warning = "checkpoint truncated or length-damaged";
    return load;
  }
  const char* payload = framing.p + framing.pos;
  if (crc32(payload, payload_len) != crc) {
    load.warning = "checkpoint CRC mismatch";
    return load;
  }
  if (!parse_payload(payload, payload_len, &load.ckpt)) {
    load.ckpt = ServerCheckpoint{};
    load.warning = "checkpoint payload malformed";
    return load;
  }
  load.ok = true;
  return load;
}

CheckpointLoad load_checkpoint(const std::string& path) {
  VS_OBS_SCOPED_STAGE(obs::Stage::Durability);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    CheckpointLoad load;
    load.warning = "checkpoint missing or unreadable: " + path;
    return load;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_checkpoint(ss.str());
}

}  // namespace vsensor::rt
