// Performance matrix: normalized performance over (rank, time) cells,
// one matrix per component type (paper §5.5, Fig 14).
#pragma once

#include <vector>

#include "runtime/types.hpp"

namespace vsensor::rt {

class PerformanceMatrix {
 public:
  /// `resolution` is the width of one time bucket (paper: 200 ms).
  PerformanceMatrix(int ranks, int buckets, double resolution);

  int ranks() const { return ranks_; }
  int buckets() const { return buckets_; }
  double resolution() const { return resolution_; }

  /// Accumulate one normalized-performance observation with a weight
  /// (typically the record's execution count).
  void accumulate(int rank, int bucket, double value, double weight);

  /// Divide accumulated sums by weights; call once after all records.
  void finalize();

  /// True if any observation landed in the cell.
  bool has(int rank, int bucket) const;

  /// Cell value after finalize(); 0 for empty cells (check has() first).
  double at(int rank, int bucket) const;

  /// Mean over non-empty cells; 1.0 for an all-empty matrix.
  double average() const;

  /// Fraction of non-empty cells below `threshold`.
  double fraction_below(double threshold) const;

  int bucket_of(double time) const;

 private:
  size_t index(int rank, int bucket) const;

  int ranks_;
  int buckets_;
  double resolution_;
  std::vector<double> sum_;
  std::vector<double> weight_;
  bool finalized_ = false;
};

}  // namespace vsensor::rt
