#include "runtime/server.hpp"

#include <algorithm>
#include <chrono>

#include "io/vfs.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace vsensor::rt {

#if VSENSOR_OBS
namespace {
struct ServerInstruments {
  obs::Counter& crashes;
  obs::Counter& recoveries;
  obs::Counter& replayed;
  obs::Counter& skipped;

  static ServerInstruments& get() {
    auto& reg = obs::MetricsRegistry::global();
    static ServerInstruments inst{reg.counter("server.crashes"),
                                  reg.counter("server.recoveries"),
                                  reg.counter("server.frames_replayed"),
                                  reg.counter("server.frames_skipped")};
    return inst;
  }
};
}  // namespace
#endif

AnalysisServer::AnalysisServer(ServerConfig cfg, Collector* collector,
                               StreamingDetector* detector)
    : cfg_(std::move(cfg)),
      collector_(collector),
      detector_(detector),
      flight_(cfg_.flight_capacity) {
  VS_CHECK_MSG(collector_ != nullptr && detector_ != nullptr,
               "server needs a collector and a detector");
  VS_CHECK_MSG(!cfg_.journal_path.empty() && !cfg_.checkpoint_path.empty(),
               "server needs journal and checkpoint paths");
  watermarks_.resize(static_cast<size_t>(detector_->ranks()));
  journal_ =
      std::make_unique<JournalWriter>(cfg_.journal_path, cfg_.journal, cfg_.vfs);
}

AnalysisServer::~AnalysisServer() = default;

void AnalysisServer::set_crash_plan(std::vector<double> times, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  std::sort(times.begin(), times.end());
  crash_times_ = std::move(times);
  next_crash_ = 0;
  crash_seed_ = seed;
}

void AnalysisServer::on_delivery(int rank, uint64_t seq,
                                 std::span<const SliceRecord> batch,
                                 double now) {
  std::lock_guard<std::mutex> lock(mu_);
  last_now_ = now;
  // The crash fires at a delivery boundary, before the triggering delivery
  // is processed — the recovered server then handles it normally.
  while (next_crash_ < crash_times_.size() &&
         now >= crash_times_[next_crash_]) {
    ++next_crash_;
    crash_locked();
    reports_.push_back(recover_locked());
  }

  // Write-ahead discipline: the frame is on the journal (and, with the
  // default group-commit interval, on the file) before any state folds.
  append_frame_locked(JournalFrame{JournalFrameKind::Batch, rank, seq,
                                   {batch.begin(), batch.end()}});
  if (!watermarks_[static_cast<size_t>(rank)].insert(seq)) {
    // The transport already deduplicates; a duplicate here means an
    // upstream bug. Count it and refuse the double fold.
    ++duplicate_deliveries_;
    maybe_rearm_locked();
    return;
  }
  collector_->ingest(batch);
  ++delivered_batches_;
  ++batches_since_checkpoint_;
  // While degraded the re-arm probe owns checkpoint cadence. It runs only
  // here — after the fold and watermark update — so its checkpoint always
  // covers the delivery that paced it.
  maybe_rearm_locked();
  if (!degraded_ && cfg_.checkpoint_every_batches > 0 &&
      batches_since_checkpoint_ >= cfg_.checkpoint_every_batches) {
    checkpoint_locked();
  }
}

void AnalysisServer::mark_stale(int rank, double now) {
  std::lock_guard<std::mutex> lock(mu_);
  append_frame_locked(JournalFrame{JournalFrameKind::StaleRank, rank, 0, {}});
  // Sweeps that know the virtual time stamp it onto the StaleRank event;
  // the rest inherit the newest delivery's clock.
  detector_->mark_stale(rank, now >= 0.0 ? now : last_now_);
  maybe_rearm_locked();
}

void AnalysisServer::mark_live(int rank, double now) {
  std::lock_guard<std::mutex> lock(mu_);
  append_frame_locked(JournalFrame{JournalFrameKind::RankRejoin, rank, 0, {}});
  detector_->mark_live(rank, now >= 0.0 ? now : last_now_);
  maybe_rearm_locked();
}

void AnalysisServer::apply_standard(int sensor_id, int group, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  append_frame_locked(make_standard_frame(sensor_id, group, value));
  detector_->apply_standard_update(sensor_id, group, value);
  maybe_rearm_locked();
}

void AnalysisServer::append_frame_locked(const JournalFrame& frame) {
  if (degraded_ || journal_ == nullptr) {
    // Non-durable mode: the frame still folds (the caller continues), but
    // its bytes are dropped-and-counted instead of journaled. The re-arm
    // probe runs at the END of the operation, not here — a checkpoint
    // snapshotted now would predate this frame's fold, and truncating the
    // journal against it would silently lose the frame.
    dropped_journal_bytes_ += encode_journal_frame(frame).size();
    ++degraded_appends_;
    return;
  }
  const uint64_t before = journal_->appended_bytes();
  bool ok = journal_->append(frame);
  // Bytes per append, not wall time: the p50/p99 gauges must be
  // bit-identical across reruns of the same seed.
  append_bytes_hist_.record(
      static_cast<double>(journal_->appended_bytes() - before));
  if (ok) return;
  // The frame is buffered but did not drain. Retry the drain a bounded
  // number of times, charging a doubling virtual backoff (accounted, not
  // slept), then give up and run non-durable.
  double backoff = cfg_.io_retry_backoff;
  for (uint64_t attempt = 0; attempt < cfg_.io_retry_attempts && !ok;
       ++attempt) {
    ++io_retries_;
    io_backoff_seconds_ += backoff;
    backoff *= 2.0;
    ok = journal_->commit();
  }
  if (!ok) {
    enter_degraded_locked("journal drain failed after " +
                          std::to_string(cfg_.io_retry_attempts) +
                          " retries: " + journal_->last_error());
  }
}

void AnalysisServer::retire_journal_locked() {
  if (journal_ == nullptr) return;
  journal_io_errors_base_ += journal_->io_errors();
  journal_lost_bytes_base_ += journal_->lost_bytes();
  journal_.reset();
}

void AnalysisServer::enter_degraded_locked(std::string why) {
  if (degraded_) return;
  degraded_ = true;
  ++degraded_entries_;
  degraded_appends_ = 0;
  size_t dropped = 0;
  if (journal_ != nullptr) dropped = journal_->drop_buffer_as_lost();
  dropped_journal_bytes_ += dropped;
  if (hooks_) {
    obs::Event ev;
    ev.kind = obs::EventKind::DurabilityDegraded;
    ev.t = last_now_;
    ev.value = static_cast<double>(dropped);
    ev.count = degraded_entries_;
    ev.detail = std::move(why);
    hooks_.emit(std::move(ev));
  }
}

void AnalysisServer::maybe_rearm_locked() {
  if (!degraded_ || cfg_.rearm_every_appends == 0) return;
  if (degraded_appends_ < cfg_.rearm_every_appends) return;
  degraded_appends_ = 0;
  // Durability only re-arms once a fresh checkpoint (covering everything
  // folded so far, dropped frames included) actually lands — only then may
  // the journal be truncated without widening the loss window.
  const auto saved = try_save_checkpoint(cfg_.checkpoint_path,
                                         build_checkpoint_locked(), cfg_.vfs);
  if (!saved.ok) {
    ++checkpoint_failures_;
    if (hooks_) {
      obs::Event ev;
      ev.kind = obs::EventKind::CheckpointFailed;
      ev.t = last_now_;
      ev.detail = saved.error;
      hooks_.emit(std::move(ev));
    }
    return;
  }
  batches_since_checkpoint_ = 0;
  checkpoint_t_ = last_now_;
  ++checkpoints_saved_;
  if (journal_ == nullptr) {
    journal_ = std::make_unique<JournalWriter>(cfg_.journal_path, cfg_.journal,
                                               cfg_.vfs);
  } else if (!journal_->reopen_truncated()) {
    return;  // still degraded; the next probe retries
  }
  if (!journal_->healthy()) return;
  degraded_ = false;
  ++rearms_;
  if (hooks_) {
    obs::Event ev;
    ev.kind = obs::EventKind::DurabilityRearmed;
    ev.t = last_now_;
    ev.count = rearms_;
    ev.detail = cfg_.checkpoint_path;
    hooks_.emit(std::move(ev));
  }
}

ServerCheckpoint AnalysisServer::build_checkpoint_locked() const {
  ServerCheckpoint ckpt;
  ckpt.sensor_count = static_cast<uint32_t>(detector_->sensor_count());
  ckpt.ranks = detector_->ranks();
  ckpt.run_time = detector_->run_time();
  ckpt.collector = collector_->counters();
  ckpt.watermarks = watermarks_;
  ckpt.detector = detector_->snapshot();
  return ckpt;
}

void AnalysisServer::checkpoint_locked() {
  obs::ScopedSpan span("server:checkpoint", "durability");
  span.set_shard(hooks_.shard);
  span.set_path(cfg_.checkpoint_path);
  // Drain journaled frames to the file first (hygiene; the checkpoint
  // covers all *folded* state either way, and replay is idempotent, so a
  // failed drain does not block the publish).
  if (journal_ != nullptr) journal_->commit();
  const auto saved = try_save_checkpoint(cfg_.checkpoint_path,
                                         build_checkpoint_locked(), cfg_.vfs);
  // Success or failure, the interval restarts: a failed publish keeps the
  // previous checkpoint and retries at the next boundary, not every batch.
  batches_since_checkpoint_ = 0;
  if (!saved.ok) {
    ++checkpoint_failures_;
    if (hooks_) {
      obs::Event ev;
      ev.kind = obs::EventKind::CheckpointFailed;
      ev.t = last_now_;
      ev.detail = saved.error;
      hooks_.emit(std::move(ev));
    }
    return;
  }
  checkpoint_t_ = last_now_;
  ++checkpoints_saved_;
  if (hooks_) {
    obs::Event ev;
    ev.kind = obs::EventKind::CheckpointSaved;
    ev.t = last_now_;
    ev.count = delivered_batches_;
    ev.detail = cfg_.checkpoint_path;
    hooks_.emit(std::move(ev));
  }
}

void AnalysisServer::checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  checkpoint_locked();
}

void AnalysisServer::crash_locked() {
  obs::ScopedSpan span("server:crash", "durability");
  span.set_shard(hooks_.shard);
  span.set_path(cfg_.journal_path);
  ++crashes_;
  VS_OBS_ONLY(if (obs::enabled()) ServerInstruments::get().crashes.add();)
  if (hooks_) {
    obs::Event ev;
    ev.kind = obs::EventKind::Crash;
    ev.t = last_now_;
    ev.count = crashes_;
    ev.detail = cfg_.journal_path;
    hooks_.emit(std::move(ev));
  }
  // The user-space journal buffer dies with the process; only committed
  // bytes survive in the page cache / file.
  if (journal_ != nullptr) {
    journal_->discard_buffer();
    retire_journal_locked();  // closes the stream
  }

  // Model the write the crash cut short: append a prefix of a real
  // encoded frame, derived purely from (seed, crash ordinal) so the same
  // seed always tears the same bytes. Salvage must drop exactly this.
  uint64_t h = hash_combine(crash_seed_, crashes_);
  JournalFrame torn;
  torn.rank = static_cast<int32_t>(mix64(h) % 64);
  torn.seq = mix64(h + 1);
  torn.records.resize(1 + mix64(h + 2) % 3);
  for (auto& rec : torn.records) {
    rec.sensor_id = static_cast<int32_t>(mix64(h + 3) % 16);
    rec.rank = torn.rank;
    rec.t_begin = 0.0;
    rec.t_end = 1.0;
    rec.avg_duration = 1e-3;
    rec.min_duration = 1e-3;
    rec.count = 1;
  }
  const std::string encoded = encode_journal_frame(torn);
  const size_t cut = 1 + static_cast<size_t>(mix64(h + 4) % (encoded.size() - 1));
  {
    std::string err;
    auto out = io::resolve(cfg_.vfs).open_append(cfg_.journal_path, &err);
    if (out != nullptr) out->append(encoded.data(), cut);
  }

  // In-memory analysis state is gone.
  collector_->reset();
  detector_->reset();
  for (auto& wm : watermarks_) wm = SeqTracker{};
  batches_since_checkpoint_ = 0;

  // Post-mortem: the flight ring (last N events + health snapshots)
  // survives the simulated process death because the recorder models the
  // mapped core a real flight recorder would land in.
  dump_flight_locked();
}

void AnalysisServer::crash() {
  std::lock_guard<std::mutex> lock(mu_);
  crash_locked();
}

RecoveryReport AnalysisServer::recover_locked() {
  obs::ScopedSpan span("server:recover", "durability");
  span.set_shard(hooks_.shard);
  span.set_path(cfg_.journal_path);
  const auto t0 = std::chrono::steady_clock::now();
  RecoveryReport report;

  // Standalone recover() over a live server: put buffered frames on the
  // file and release it before reading it back. (The crash path already
  // destroyed the writer.)
  if (journal_ != nullptr) {
    journal_->commit();
    retire_journal_locked();
  }

  // Recovering while degraded means frames dropped in degraded mode are
  // unrecoverable — no durable artifact ever saw them. Flag it loudly;
  // the recovered state is the best the artifacts can reconstruct.
  const bool lossy = degraded_;
  if (lossy) ++lossy_recoveries_;
  degraded_ = false;
  degraded_appends_ = 0;

  // Sweep the publish window: a crash between tmp-write and rename leaves
  // an orphaned `<checkpoint>.tmp` next to the (intact) previous
  // checkpoint. It is garbage — remove it before anything else.
  if (io::resolve(cfg_.vfs).remove_file(cfg_.checkpoint_path + ".tmp").ok) {
    ++orphan_tmps_removed_;
  }

  const CheckpointLoad ckpt = load_checkpoint(cfg_.checkpoint_path);
  report.checkpoint_warning = ckpt.warning;
  if (ckpt.ok) {
    const auto& c = ckpt.ckpt;
    if (c.sensor_count == detector_->sensor_count() &&
        c.ranks == detector_->ranks() &&
        c.run_time == detector_->run_time() &&
        c.watermarks.size() == watermarks_.size()) {
      detector_->restore(c.detector);
      collector_->restore_counters(c.collector);
      watermarks_ = c.watermarks;
      report.checkpoint_loaded = true;
    } else {
      report.checkpoint_warning =
          "checkpoint shape does not match this server; ignored";
    }
  }
  if (!report.checkpoint_loaded) {
    // No usable checkpoint: recover from the journal alone, from zero.
    collector_->reset();
    detector_->reset();
    for (auto& wm : watermarks_) wm = SeqTracker{};
  }

  const JournalLoad jl = load_journal(cfg_.journal_path);
  report.journal_warning = jl.warning;
  report.torn_bytes = jl.torn_bytes;
  for (const auto& frame : jl.frames) {
    switch (frame.kind) {
      case JournalFrameKind::Batch: {
        if (frame.rank < 0 ||
            static_cast<size_t>(frame.rank) >= watermarks_.size()) {
          ++report.frames_skipped;
          break;
        }
        // Watermark dedup: a frame the checkpoint already covers folds
        // nowhere — replay is idempotent.
        if (!watermarks_[static_cast<size_t>(frame.rank)].insert(frame.seq)) {
          ++report.frames_skipped;
          break;
        }
        collector_->ingest(frame.records);
        ++delivered_batches_;
        ++report.frames_replayed;
        report.records_replayed += frame.records.size();
        break;
      }
      case JournalFrameKind::StaleRank:
        detector_->mark_stale(frame.rank);
        ++report.frames_replayed;
        break;
      case JournalFrameKind::RankRejoin:
        detector_->mark_live(frame.rank);
        ++report.frames_replayed;
        break;
      case JournalFrameKind::Standard: {
        const auto view = decode_standard_frame(frame);
        if (!view) {
          ++report.frames_skipped;
          break;
        }
        // Min-folds are idempotent, so re-applying updates the checkpoint
        // already covers is harmless; order vs batch frames is preserved
        // because the journal records the fold order.
        detector_->apply_standard_update(view->sensor_id, view->group,
                                         view->value);
        ++report.frames_replayed;
        break;
      }
    }
  }

  // Checkpoint the recovered state first, then truncate the journal (lazy
  // truncation happens here): only once the checkpoint durably covers the
  // replayed frames is the redo log allowed to go. If the publish fails,
  // the on-disk journal must be preserved as the redo source — a fresh
  // writer would truncate it — so the server comes back degraded
  // (journal-less) and the re-arm probe retries the whole sequence.
  const auto saved = try_save_checkpoint(cfg_.checkpoint_path,
                                         build_checkpoint_locked(), cfg_.vfs);
  if (saved.ok) {
    batches_since_checkpoint_ = 0;
    checkpoint_t_ = last_now_;
    ++checkpoints_saved_;
    journal_ = std::make_unique<JournalWriter>(cfg_.journal_path, cfg_.journal,
                                               cfg_.vfs);
  } else {
    ++checkpoint_failures_;
    if (hooks_) {
      obs::Event ev;
      ev.kind = obs::EventKind::CheckpointFailed;
      ev.t = last_now_;
      ev.detail = saved.error;
      hooks_.emit(std::move(ev));
    }
    enter_degraded_locked("post-recovery checkpoint failed: " + saved.error);
  }

  report.recovery_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  VS_OBS_ONLY(if (obs::enabled()) {
    auto& inst = ServerInstruments::get();
    inst.recoveries.add();
    inst.replayed.add(report.frames_replayed);
    inst.skipped.add(report.frames_skipped);
  })
  if (hooks_) {
    if (report.torn_bytes > 0) {
      obs::Event ev;
      ev.kind = obs::EventKind::JournalSalvage;
      ev.t = last_now_;
      ev.value = static_cast<double>(report.torn_bytes);
      ev.detail = report.journal_warning;
      hooks_.emit(std::move(ev));
    }
    obs::Event ev;
    ev.kind = obs::EventKind::Recovery;
    ev.t = last_now_;
    ev.count = report.frames_replayed;
    ev.detail = report.checkpoint_loaded ? "checkpoint+journal" : "journal_only";
    if (lossy) ev.detail += "+lossy";
    hooks_.emit(std::move(ev));
  }
  // A torn tail warrants a post-mortem even when recover() was a cold
  // start over on-disk state (no crash() call this process): dump the
  // ring with the salvage + recovery events.
  if (report.torn_bytes > 0) dump_flight_locked();
  return report;
}

RecoveryReport AnalysisServer::recover() {
  std::lock_guard<std::mutex> lock(mu_);
  RecoveryReport report = recover_locked();
  reports_.push_back(report);
  return report;
}

uint64_t AnalysisServer::crashes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashes_;
}

uint64_t AnalysisServer::delivered_batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delivered_batches_;
}

uint64_t AnalysisServer::duplicate_deliveries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return duplicate_deliveries_;
}

uint64_t AnalysisServer::io_errors_locked() const {
  return journal_io_errors_base_ +
         (journal_ != nullptr ? journal_->io_errors() : 0) +
         checkpoint_failures_ + flight_dump_failures_;
}

uint64_t AnalysisServer::lost_journal_bytes_locked() const {
  return journal_lost_bytes_base_ +
         (journal_ != nullptr ? journal_->lost_bytes() : 0);
}

bool AnalysisServer::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

uint64_t AnalysisServer::degraded_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_entries_;
}

uint64_t AnalysisServer::rearms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rearms_;
}

uint64_t AnalysisServer::lossy_recoveries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lossy_recoveries_;
}

uint64_t AnalysisServer::dropped_journal_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_journal_bytes_;
}

uint64_t AnalysisServer::io_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return io_errors_locked();
}

uint64_t AnalysisServer::io_retries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return io_retries_;
}

uint64_t AnalysisServer::lost_journal_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lost_journal_bytes_locked();
}

uint64_t AnalysisServer::checkpoint_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoint_failures_;
}

uint64_t AnalysisServer::orphan_tmps_removed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return orphan_tmps_removed_;
}

uint64_t AnalysisServer::flight_dump_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flight_dump_failures_;
}

void AnalysisServer::set_event_hooks(obs::EventHooks hooks) {
  std::lock_guard<std::mutex> lock(mu_);
  // The server substitutes its own flight ring so crash dumps always carry
  // the detector's latest flags alongside the durability events.
  hooks_ = obs::EventHooks{hooks.log, &flight_, hooks.shard};
  flight_wired_ = true;
  detector_->set_event_hooks(hooks_);
}

std::string AnalysisServer::flight_path() const {
  return cfg_.flight_path.empty() ? cfg_.journal_path + ".flight"
                                  : cfg_.flight_path;
}

void AnalysisServer::dump_flight_locked() {
  if (!flight_wired_) return;
  if (!flight_.dump(flight_path(), identity_ ? &*identity_ : nullptr,
                    cfg_.vfs)) {
    ++flight_dump_failures_;
  }
}

void AnalysisServer::sample_health(double now,
                                   obs::HealthRecorder& rec) const {
  std::lock_guard<std::mutex> lock(mu_);
  rec.gauge("delivered_batches", delivered_batches_);
  rec.gauge("duplicate_deliveries", duplicate_deliveries_);
  rec.gauge("crashes", crashes_);
  rec.gauge("recoveries", reports_.size());
  rec.gauge("checkpoints_saved", checkpoints_saved_);
  rec.gauge("batches_since_checkpoint", batches_since_checkpoint_);
  // Virtual seconds since the last checkpoint — the replay debt a crash
  // right now would incur. -1 = never checkpointed.
  rec.gauge("checkpoint_age", checkpoint_t_ >= 0.0 && now >= checkpoint_t_
                                  ? now - checkpoint_t_
                                  : -1.0);
  if (journal_ != nullptr) {
    rec.gauge("journal.appended_frames", journal_->appended_frames());
    rec.gauge("journal.appended_bytes", journal_->appended_bytes());
    rec.gauge("journal.commits", journal_->commits());
    rec.gauge("journal.committed_bytes", journal_->committed_bytes());
  }
  rec.gauge("journal.append_bytes_p50", append_bytes_hist_.quantile(0.50));
  rec.gauge("journal.append_bytes_p99", append_bytes_hist_.quantile(0.99));
  // Durability state machine: an operator watching the health stream sees
  // the shard drop to non-durable mode and come back, with the loss bill.
  rec.gauge("degraded", degraded_ ? 1 : 0);
  rec.gauge("degraded_entries", degraded_entries_);
  rec.gauge("rearms", rearms_);
  rec.gauge("io_errors", io_errors_locked());
  rec.gauge("io_retries", io_retries_);
  rec.gauge("io_backoff_seconds", io_backoff_seconds_);
  rec.gauge("dropped_journal_bytes", dropped_journal_bytes_);
  rec.gauge("journal.lost_bytes", lost_journal_bytes_locked());
  rec.gauge("lossy_recoveries", lossy_recoveries_);
  rec.gauge("checkpoint_failures", checkpoint_failures_);
  {
    obs::HealthRecorder::Prefix scope(rec, "collector");
    collector_->sample_health(now, rec);
  }
  {
    obs::HealthRecorder::Prefix scope(rec, "detector");
    detector_->sample_health(now, rec);
  }
}

}  // namespace vsensor::rt
