// Write-ahead journal of the analysis server (crash tolerance layer).
//
// Every batch the server ingests is appended here as a CRC32-framed,
// length-prefixed binary record *before* it folds into streaming state, so
// a server crash loses no acknowledged delivery: restart loads the newest
// checkpoint and replays the journal suffix through the normal ingest path.
//
// Durability model: appends buffer in user space and drain to the file in
// large writes (`commit`), with no fsync anywhere — a process crash keeps
// everything committed to the OS page cache, a torn in-flight frame at the
// crash instant is expected and salvaged away on read. The byte/commit
// budget of the writer is obs-instrumented so the durability cost is a
// measured quantity, not a guess.
//
// Frame layout (little-endian, after the one-line file header):
//   u32 payload_len | u32 crc32(payload) | payload
//   payload: u8 kind | i32 rank | u64 seq | u32 count | count * record
//   record:  i32 sensor_id | i32 rank | f32 metric | f32 reserved |
//            f64 t_begin | f64 t_end | f64 avg | f64 min | u32 count |
//            u32 flags                       (= kRecordWireBytes bytes)
// Kinds: 0 = batch delivery, 1 = stale-rank mark (seq/count unused),
//        2 = standard update — a peer shard's (sensor, group) standard-time
//            minimum broadcast by the sharded tier. Field reuse keeps the
//            wire format unchanged: rank carries the sensor id, seq the
//            group (as u32), and a single carrier record holds the value in
//            avg_duration. See make_standard_frame / decode_standard_frame.
//        3 = rank-rejoin mark (elastic revival; seq/count unused)
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "io/vfs.hpp"
#include "runtime/types.hpp"

namespace vsensor::rt {

enum class JournalFrameKind : uint8_t {
  Batch = 0,
  StaleRank = 1,
  Standard = 2,
  /// Elastic revival: rank rejoined after a stale verdict (seq/count
  /// unused, like StaleRank). Replay re-lifts the exclusion in fold order.
  RankRejoin = 3,
};

struct JournalFrame {
  JournalFrameKind kind = JournalFrameKind::Batch;
  int32_t rank = -1;
  uint64_t seq = 0;  ///< transport sequence number (Batch frames)
  std::vector<SliceRecord> records;
};

/// Serialize one frame exactly as the writer appends it (header + CRC +
/// payload). Exposed so tests and the crash injector can construct torn
/// prefixes of a real frame.
std::string encode_journal_frame(const JournalFrame& frame);

/// Build a Standard frame from one broadcast standard minimum (see the
/// field-reuse note in the header comment).
JournalFrame make_standard_frame(int32_t sensor_id, int32_t group,
                                 double value);

/// Decoded Standard frame payload, or unset if the frame is not a
/// well-formed Standard frame (wrong kind, missing carrier record, or a
/// value no real standard can take). Recovery skips malformed frames.
struct StandardFrameView {
  int32_t sensor_id = 0;
  int32_t group = 0;
  double value = 0.0;
};
std::optional<StandardFrameView> decode_standard_frame(
    const JournalFrame& frame);

struct JournalWriterConfig {
  /// User-space buffer; appends drain to the file once it exceeds this.
  size_t buffer_bytes = 64 * 1024;
  /// Group commit: force a drain every N appended frames (1 = every frame
  /// is on the file — i.e. durable against process crash — before the
  /// ingest that wrote it returns; larger values trade a wider crash
  /// window for fewer writes).
  uint64_t commit_every_frames = 1;
};

class JournalWriter {
 public:
  /// Opens `path` truncated (through `vfs`; null = the real filesystem)
  /// and writes the header. Never throws: an open failure leaves the
  /// writer unhealthy — appends keep buffering, commits keep failing, and
  /// the owner decides whether to retry (reopen_truncated) or degrade.
  JournalWriter(std::string path, JournalWriterConfig cfg = {},
                io::Vfs* vfs = nullptr);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Append one frame (buffered; commits per the config). Returns false
  /// when an auto-commit drain failed — the frame stays buffered, so a
  /// later commit() retry can still land it. Not thread-safe: the owning
  /// server serializes appends with its ingest order.
  bool append(const JournalFrame& frame);

  /// Drain the user-space buffer to the file (no fsync). Returns false on
  /// failure; partial progress (a short write) is accounted — the written
  /// prefix leaves the buffer, the rest stays for the next retry.
  bool commit();

  /// Truncate the journal to an empty file (after a checkpoint made its
  /// content redundant), reset the frame counter, and clear any failed
  /// state. Returns false when the reopen itself failed (still unhealthy).
  bool reopen_truncated();

  /// Drop everything still buffered in user space — the portion of history
  /// a process crash destroys. The file keeps only committed bytes. This
  /// models intentional loss and does NOT count toward lost_bytes().
  void discard_buffer();

  /// Drop the buffer *as loss* (degraded-mode entry: the owner stops
  /// journaling and the buffered acked-but-undrained bytes are gone).
  /// Returns the byte count dropped.
  size_t drop_buffer_as_lost();

  /// Stream open and no unrecovered failure.
  bool healthy() const { return file_ != nullptr; }

  const std::string& path() const { return path_; }
  uint64_t appended_frames() const { return appended_frames_; }
  uint64_t appended_bytes() const { return appended_bytes_; }
  uint64_t commits() const { return commits_; }
  uint64_t committed_bytes() const { return committed_bytes_; }
  size_t buffered_bytes() const { return buf_.size(); }
  /// Failed vfs operations (open/append/flush) this writer observed.
  uint64_t io_errors() const { return io_errors_; }
  /// Appended-and-acknowledged bytes that never reached the file: dropped
  /// at degraded entry or silently un-drained at teardown. Also mirrored
  /// into the obs counter `journal.lost_bytes`.
  uint64_t lost_bytes() const { return lost_bytes_; }
  const std::string& last_error() const { return last_error_; }

 private:
  bool open_truncated();
  void record_error(std::string what);
  void add_lost(size_t bytes);

  std::string path_;
  JournalWriterConfig cfg_;
  io::Vfs* vfs_;
  std::unique_ptr<io::File> file_;
  std::string buf_;
  uint64_t frames_since_commit_ = 0;
  uint64_t appended_frames_ = 0;
  uint64_t appended_bytes_ = 0;
  uint64_t commits_ = 0;
  uint64_t committed_bytes_ = 0;
  uint64_t io_errors_ = 0;
  uint64_t lost_bytes_ = 0;
  std::string last_error_;
};

/// Result of reading a journal file back. Reading never throws on corrupt
/// or truncated content: the valid frame prefix is salvaged and the damage
/// is described, so recovery can proceed with what survived.
struct JournalLoad {
  std::vector<JournalFrame> frames;
  uint64_t valid_bytes = 0;    ///< bytes covered by header + intact frames
  uint64_t total_bytes = 0;    ///< file size as read
  uint64_t torn_bytes = 0;     ///< trailing bytes dropped by salvage
  bool header_valid = false;
  /// Human-readable description of any salvage action ("" = clean load).
  std::string warning;

  bool clean() const { return header_valid && torn_bytes == 0; }
};

/// Load `path`, salvaging the valid prefix (see JournalLoad). A missing
/// file loads as empty-with-warning; a bad header yields zero frames.
JournalLoad load_journal(const std::string& path);

}  // namespace vsensor::rt
