// Checkpoint/restore of the analysis server (crash tolerance layer).
//
// A checkpoint is one versioned, CRC-protected binary snapshot of
// everything the server must remember to continue a run after a crash:
//  * the complete StreamingDetector state (running minima, Welford
//    accumulators, standard-free matrix cell sums, per-rank last slices,
//    stale set, flag counters) — every double carried byte-exact;
//  * the Collector's cumulative accounting counters, so ingest/byte/batch
//    accounting stays continuous across the restart;
//  * the per-rank delivery watermarks (SeqTracker), which make replaying a
//    journal suffix that overlaps the checkpoint idempotent — a batch at
//    or below its rank's watermark is skipped, never double-counted;
//  * sanity fields (sensor count, ranks, run time) so a checkpoint is
//    never restored into a differently-shaped server.
//
// File layout: one-line header, then u64 payload_len | u32 crc32(payload)
// | payload. Writing goes to `<path>.tmp` and renames over the target, so
// a crash mid-checkpoint leaves the previous checkpoint intact — the file
// at `path` is always either absent or a complete previous snapshot.
// Loading never throws on corrupt content: damage fails closed with a
// structured warning and recovery falls back to replaying the journal
// from scratch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/vfs.hpp"
#include "runtime/collector.hpp"
#include "runtime/streaming_detector.hpp"
#include "runtime/transport.hpp"

namespace vsensor::rt {

struct ServerCheckpoint {
  // Shape sanity: restoring into a server with a different sensor table,
  // rank count, or analysis horizon is refused.
  uint32_t sensor_count = 0;
  int32_t ranks = 0;
  double run_time = 0.0;

  Collector::Counters collector;
  /// Per-rank delivery watermarks at checkpoint time (journal-replay dedup).
  std::vector<SeqTracker> watermarks;
  StreamingDetector::Snapshot detector;
};

/// Serialize a checkpoint exactly as save_checkpoint writes it (header +
/// length + CRC + payload). Exposed so tests can corrupt real bytes.
std::string encode_checkpoint(const ServerCheckpoint& ckpt);

/// Outcome of a non-throwing checkpoint publish attempt.
struct CheckpointSaveResult {
  bool ok = false;
  /// The `<path>.tmp` staging file survived the failure (rename window):
  /// recovery should sweep it. False when the write failed early enough
  /// that the tmp was removed (or never materialized).
  bool tmp_left = false;
  std::string error;
};

/// Write `ckpt` atomically through `vfs` (null = real filesystem):
/// serialize, write `<path>.tmp`, flush, rename over `path`. On failure the
/// previous checkpoint at `path` is untouched; the result says whether the
/// staging tmp was left behind.
CheckpointSaveResult try_save_checkpoint(const std::string& path,
                                         const ServerCheckpoint& ckpt,
                                         io::Vfs* vfs = nullptr);

/// Throwing convenience wrapper over try_save_checkpoint (real filesystem).
void save_checkpoint(const std::string& path, const ServerCheckpoint& ckpt);

/// Result of reading a checkpoint back. Never throws on corrupt content.
struct CheckpointLoad {
  bool ok = false;
  ServerCheckpoint ckpt;
  uint64_t total_bytes = 0;
  /// Why the load failed ("" on success).
  std::string warning;
};

/// Load `path`. A missing, truncated, CRC-damaged, or structurally
/// malformed file yields ok = false with a warning — the caller recovers
/// from the journal alone.
CheckpointLoad load_checkpoint(const std::string& path);

/// Parse checkpoint bytes already in memory (the file-format body,
/// including header). Shared by load_checkpoint and fuzz tests.
CheckpointLoad parse_checkpoint(const std::string& bytes);

}  // namespace vsensor::rt
