#include "runtime/sharded_tier.hpp"

#include "support/error.hpp"

namespace vsensor::rt {

ShardedAnalysisTier::ShardedAnalysisTier(ShardedTierConfig cfg,
                                         std::vector<SensorInfo> sensors,
                                         int ranks, double run_time)
    : cfg_(std::move(cfg)),
      sensors_(std::move(sensors)),
      ranks_(ranks),
      run_time_(run_time) {
  VS_CHECK_MSG(cfg_.shards > 0, "tier needs at least one shard");
  VS_CHECK_MSG(!cfg_.journal_path.empty() && !cfg_.checkpoint_path.empty(),
               "tier needs journal and checkpoint base paths");
  shards_.reserve(static_cast<size_t>(cfg_.shards));
  for (int k = 0; k < cfg_.shards; ++k) {
    auto shard = std::make_unique<Shard>();
    shard->collector = std::make_unique<Collector>(cfg_.collector);
    shard->collector->set_sensors(sensors_);
    shard->detector = std::make_unique<StreamingDetector>(
        cfg_.detector, sensors_, ranks_, run_time_);
    shard->collector->attach_sink(shard->detector.get());
    // Publication is only needed when there is a peer to tell.
    if (cfg_.shards > 1) shard->detector->enable_standard_publication();
    ServerConfig sc;
    const std::string suffix = ".shard" + std::to_string(k);
    sc.journal_path = cfg_.journal_path + suffix;
    sc.checkpoint_path = cfg_.checkpoint_path + suffix;
    sc.checkpoint_every_batches = cfg_.checkpoint_every_batches;
    sc.journal = cfg_.journal;
    // Flight dumps suffix the *base* flight path, so a tier run leaves
    // "<base>.flight.shard<k>" next to the shard's journal files.
    const std::string flight_base = cfg_.flight_path.empty()
                                        ? cfg_.journal_path + ".flight"
                                        : cfg_.flight_path;
    sc.flight_path = flight_base + suffix;
    sc.flight_capacity = cfg_.flight_capacity;
    sc.vfs = cfg_.vfs;
    sc.io_retry_attempts = cfg_.io_retry_attempts;
    sc.io_retry_backoff = cfg_.io_retry_backoff;
    sc.rearm_every_appends = cfg_.rearm_every_appends;
    shard->server = std::make_unique<AnalysisServer>(
        std::move(sc), shard->collector.get(), shard->detector.get());
    shards_.push_back(std::move(shard));
  }
}

ShardedAnalysisTier::~ShardedAnalysisTier() = default;

size_t ShardedAnalysisTier::checked(int shard) const {
  VS_CHECK_MSG(shard >= 0 && static_cast<size_t>(shard) < shards_.size(),
               "unknown analysis shard");
  return static_cast<size_t>(shard);
}

void ShardedAnalysisTier::on_delivery(int rank, uint64_t seq,
                                      std::span<const SliceRecord> batch,
                                      double now) {
  VS_CHECK_MSG(rank >= 0, "delivery from negative rank");
  const size_t s = static_cast<size_t>(shard_of(rank));
  Shard& shard = *shards_[s];
  shard.server->on_delivery(rank, seq, batch, now);
  shard.routed_batches.fetch_add(1, std::memory_order_relaxed);
  shard.routed_records.fetch_add(batch.size(), std::memory_order_relaxed);
  // Broadcast after the fold returns (no shard lock held here): the
  // exchange takes each peer's server lock one at a time, so delivery and
  // exchange locks never nest across shards.
  if (shards_.size() > 1) exchange_from(s, now);
}

void ShardedAnalysisTier::exchange_from(size_t from, double now) {
  const auto lowered = shards_[from]->detector->take_lowered_standards();
  if (lowered.empty()) return;
  const Shard& src = *shards_[from];
  for (const auto& u : lowered) {
    if (src.hooks) {
      obs::Event ev;
      ev.kind = obs::EventKind::StandardUpdate;
      ev.t = now;
      ev.sensor = u.sensor_id;
      ev.has_group = true;
      ev.group = u.group;
      ev.value = u.value;
      src.hooks.emit(std::move(ev));
    }
  }
  for (size_t p = 0; p < shards_.size(); ++p) {
    if (p == from) continue;
    for (const auto& u : lowered) {
      shards_[p]->server->apply_standard(u.sensor_id, u.group, u.value);
    }
  }
  broadcast_updates_.fetch_add(lowered.size() * (shards_.size() - 1),
                               std::memory_order_relaxed);
}

void ShardedAnalysisTier::mark_stale(int rank, double now) {
  VS_CHECK_MSG(rank >= 0, "stale mark for negative rank");
  shards_[static_cast<size_t>(shard_of(rank))]->server->mark_stale(rank, now);
}

void ShardedAnalysisTier::mark_live(int rank, double now) {
  VS_CHECK_MSG(rank >= 0, "live mark for negative rank");
  shards_[static_cast<size_t>(shard_of(rank))]->server->mark_live(rank, now);
}

void ShardedAnalysisTier::set_crash_plan(int shard, std::vector<double> times,
                                         uint64_t seed) {
  shards_[checked(shard)]->server->set_crash_plan(std::move(times), seed);
}

void ShardedAnalysisTier::set_crash_plan(const std::vector<double>& times,
                                         uint64_t seed) {
  for (size_t k = 0; k < shards_.size(); ++k) {
    shards_[k]->server->set_crash_plan(times, seed + k);
  }
}

StreamingDetector::Snapshot ShardedAnalysisTier::merged_snapshot() const {
  std::vector<StreamingDetector::Snapshot> level;
  level.reserve(shards_.size());
  for (const auto& shard : shards_) level.push_back(shard->detector->snapshot());
  // Binary tree reduction: pairwise merge each level until one remains.
  while (level.size() > 1) {
    std::vector<StreamingDetector::Snapshot> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(StreamingDetector::merge_snapshots(level[i], level[i + 1]));
    }
    if (level.size() % 2 != 0) next.push_back(std::move(level.back()));
    level = std::move(next);
  }
  return std::move(level.front());
}

AnalysisResult ShardedAnalysisTier::finalize() const {
  StreamingDetector merged(cfg_.detector, sensors_, ranks_, run_time_);
  merged.restore(merged_snapshot());
  return merged.finalize();
}

uint64_t ShardedAnalysisTier::routed_batches(int shard) const {
  return shards_[checked(shard)]->routed_batches.load(std::memory_order_relaxed);
}

uint64_t ShardedAnalysisTier::routed_records(int shard) const {
  return shards_[checked(shard)]->routed_records.load(std::memory_order_relaxed);
}

uint64_t ShardedAnalysisTier::total_routed_records() const {
  uint64_t sum = 0;
  for (const auto& shard : shards_) {
    sum += shard->routed_records.load(std::memory_order_relaxed);
  }
  return sum;
}

uint64_t ShardedAnalysisTier::broadcast_updates() const {
  return broadcast_updates_.load(std::memory_order_relaxed);
}

int ShardedAnalysisTier::degraded_shards() const {
  int n = 0;
  for (const auto& shard : shards_) n += shard->server->degraded() ? 1 : 0;
  return n;
}

uint64_t ShardedAnalysisTier::degraded_entries() const {
  uint64_t sum = 0;
  for (const auto& shard : shards_) sum += shard->server->degraded_entries();
  return sum;
}

uint64_t ShardedAnalysisTier::rearms() const {
  uint64_t sum = 0;
  for (const auto& shard : shards_) sum += shard->server->rearms();
  return sum;
}

uint64_t ShardedAnalysisTier::lossy_recoveries() const {
  uint64_t sum = 0;
  for (const auto& shard : shards_) sum += shard->server->lossy_recoveries();
  return sum;
}

uint64_t ShardedAnalysisTier::dropped_journal_bytes() const {
  uint64_t sum = 0;
  for (const auto& shard : shards_) {
    sum += shard->server->dropped_journal_bytes();
  }
  return sum;
}

uint64_t ShardedAnalysisTier::io_errors() const {
  uint64_t sum = 0;
  for (const auto& shard : shards_) sum += shard->server->io_errors();
  return sum;
}

void ShardedAnalysisTier::set_event_log(obs::EventLog* log) {
  for (size_t k = 0; k < shards_.size(); ++k) {
    Shard& shard = *shards_[k];
    // The server substitutes its own flight ring; the tier's broadcast
    // events tee into that same ring so shard dumps carry them too.
    shard.server->set_event_hooks(
        obs::EventHooks{log, nullptr, static_cast<int>(k)});
    shard.hooks =
        obs::EventHooks{log, &shard.server->flight(), static_cast<int>(k)};
  }
}

void ShardedAnalysisTier::set_run_identity(const obs::RunIdentity& id) {
  for (auto& shard : shards_) shard->server->set_run_identity(id);
}

std::string ShardedAnalysisTier::flight_path(int shard) const {
  return shards_[checked(shard)]->server->flight_path();
}

void ShardedAnalysisTier::sample_health(double now,
                                        obs::HealthRecorder& rec) const {
  rec.gauge("shards", static_cast<uint64_t>(shards_.size()));
  rec.gauge("routed_records", total_routed_records());
  rec.gauge("broadcast_updates", broadcast_updates());
  rec.gauge("degraded_shards", degraded_shards());
  rec.gauge("io_errors", io_errors());
  rec.gauge("dropped_journal_bytes", dropped_journal_bytes());
  for (size_t k = 0; k < shards_.size(); ++k) {
    const Shard& shard = *shards_[k];
    obs::HealthRecorder::Prefix scope(rec, "shard" + std::to_string(k));
    rec.gauge("routed_batches",
              shard.routed_batches.load(std::memory_order_relaxed));
    rec.gauge("routed_records",
              shard.routed_records.load(std::memory_order_relaxed));
    shard.server->sample_health(now, rec);
  }
}

}  // namespace vsensor::rt
