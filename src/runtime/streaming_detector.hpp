// Streaming (incremental) variance detection — the on-line counterpart of
// the batch Detector (paper §5.4: the dedicated analysis process folds
// batches as ranks push them, and §2: reports appear during the run).
//
// Each ingested batch updates per-sensor running state in O(batch) work:
//  * the cross-rank standard time per (sensor, dynamic-rule group) — a
//    running minimum, so arrival order never changes it;
//  * each rank's own fastest slice (intra-process comparison, Fig 13);
//  * Welford mean/variance of normalized performance per sensor;
//  * per-(rank, time-bucket) matrix contributions, stored in a
//    standard-free form (sum of weight/duration) so the final matrices are
//    *identical* to the batch Detector's even though the standard time is
//    only fully known at the end — no history replay, ever.
//
// Intra-/inter-process variance flags are raised online against the
// standards known at arrival time; the final matrices and variance events
// from finalize() match Detector::analyze_records on the same records.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <tuple>
#include <vector>

#include "obs/events.hpp"
#include "obs/health.hpp"
#include "runtime/collector.hpp"
#include "runtime/detector.hpp"
#include "runtime/types.hpp"

namespace vsensor::rt {

/// One (sensor, dynamic-rule group) standard-time minimum in flight between
/// analysis shards. The sharded tier broadcasts these after every routed
/// delivery so each shard's standard board tracks the *global* running
/// minimum — the invariant that makes per-shard inter-process flags equal
/// the single-server run's (see runtime/sharded_tier.hpp).
struct StandardUpdate {
  int32_t sensor_id = 0;
  int32_t group = 0;
  double value = 0.0;
};

class StreamingDetector final : public BatchSink, public obs::HealthSource {
 public:
  /// The analysis horizon (`run_time`) and rank count are fixed up front,
  /// exactly like a batch analysis over the same window; records past the
  /// horizon clamp into the last bucket, as in the batch path.
  StreamingDetector(DetectorConfig cfg, std::vector<SensorInfo> sensors,
                    int ranks, double run_time);

  /// Fold one batch into the running state. Thread-safe; O(batch) work.
  void on_batch(std::span<const SliceRecord> batch) override;
  void observe(std::span<const SliceRecord> batch) { on_batch(batch); }

  /// Struct-of-arrays fold — what the collector forwards on the staging
  /// hot path. Semantically identical to the AoS overload record for
  /// record (same sequential arrival order, so the same running minima,
  /// flags, and Welford state), but the scans run over contiguous columns
  /// and the standard-time map lookups are cached across runs of records
  /// sharing one (sensor, group, rank) — the common shape of a staged
  /// batch, which holds one rank's slices.
  void on_batch(const RecordBatch& batch) override;

  /// Welford running statistics over normalized performance, per sensor.
  /// Normalization uses the standard known when each record arrived.
  struct RunningStats {
    uint64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;  ///< sum of squared deviations from the running mean
    double variance() const {
      return count > 1 ? m2 / static_cast<double>(count - 1) : 0.0;
    }
  };
  RunningStats sensor_stats(int sensor_id) const;

  /// Last slice folded per (sensor, rank): online inspection state.
  struct LastSlice {
    double t_end = 0.0;
    double avg_duration = 0.0;
    double normalized = 1.0;  ///< against the standard at arrival time
  };
  std::optional<LastSlice> last_slice(int sensor_id, int rank) const;

  /// Cross-rank standard time of the record's (sensor, group); 0 if unseen.
  double standard_time(int sensor_id, float metric) const;

  /// Graceful degradation under transport failure: once a rank is marked
  /// stale (its batch deliveries stopped arriving — see
  /// BatchTransport::sweep_stale), late stragglers from it are counted in
  /// stale_records() and excluded from standard-time updates, matrices,
  /// flags, and statistics, instead of silently skewing the analysis with
  /// a half-delivered history. Idempotent; thread-safe. The `now` overload
  /// stamps the sweep's virtual time onto the emitted StaleRank event;
  /// callers that don't know the time get an unstamped event (t = -1).
  void mark_stale(int rank) { mark_stale(rank, -1.0); }
  void mark_stale(int rank, double now);
  std::vector<int> stale_ranks() const;

  /// Elastic revival: `rank` rejoined the run (BatchTransport::rejoin_rank),
  /// so its fresh incarnation's records fold normally again. Lifts the
  /// stale exclusion; records the first incarnation shipped while excluded
  /// stay counted in stale_records() — revival is not retroactive.
  /// Idempotent (reviving a live rank is a no-op); thread-safe.
  void mark_live(int rank) { mark_live(rank, -1.0); }
  void mark_live(int rank, double now);

  /// Transport-layer stale verdicts arriving through the collector (the
  /// server-less wiring: BatchTransport::sweep_stale -> Collector ->
  /// attached sink). Same semantics as mark_stale.
  void on_stale_rank(int rank) override { mark_stale(rank); }
  /// Elastic revival arriving through the collector (server-less wiring).
  void on_live_rank(int rank) override { mark_live(rank); }

  /// Opt in to lowered-standard tracking: every record that inserts or
  /// lowers a (sensor, group) standard queues that key for publication.
  /// Off by default so single-server folds pay nothing. Call before the
  /// first batch folds.
  void enable_standard_publication(bool on = true);

  /// Drain the keys whose standards were lowered since the last call,
  /// reporting each key's current (lowest) value. The sharded tier calls
  /// this after every routed delivery and broadcasts the result.
  std::vector<StandardUpdate> take_lowered_standards();

  /// Fold one externally supplied standard (a peer shard's minimum) into
  /// the board: pure min, touching no record counters and never queueing
  /// for publication (every peer receives the same broadcast). Idempotent,
  /// so journal replay may re-apply updates a checkpoint already covers.
  void apply_standard_update(int sensor_id, int group, double value);

  uint64_t observed_records() const;
  /// Records dropped because their rank was already marked stale.
  uint64_t stale_records() const;
  /// Records dropped as degenerate (avg_duration below kMinStandardTime):
  /// a broken measurement must not pose as the fastest slice.
  uint64_t degenerate_records() const;
  /// Slices below threshold against their own rank's fastest slice (§5.3).
  uint64_t intra_flags() const;
  /// Slices below threshold against the cross-rank standard (§5.4).
  uint64_t inter_flags() const;

  /// Final matrices and variance events, identical to
  /// Detector::analyze_records over the same records (AnalysisResult::flagged
  /// stays empty — the online flag counters replace the replayed list).
  AnalysisResult finalize() const;

  const DetectorConfig& config() const { return cfg_; }
  int ranks() const { return ranks_; }
  double run_time() const { return run_time_; }
  size_t sensor_count() const { return sensors_.size(); }

  /// Health plane (opt-in, non-owning). With hooks engaged, every online
  /// variance flag and stale-rank verdict becomes a structured event with
  /// its full causal context (virtual time, rank, sensor, group, score vs.
  /// standard). Wire before folding starts; one null-check branch when
  /// unwired. Journal replay after a crash re-folds batches through the
  /// same path, so events are at-least-once across a recovery — exactly
  /// mirroring what the server re-did.
  void set_event_hooks(obs::EventHooks hooks) { hooks_ = hooks; }

  /// Health plane: fold counters, flag totals, and board sizes (standards,
  /// per-rank standards, matrix cells, stale set).
  void sample_health(double now, obs::HealthRecorder& rec) const override;

  // (sensor, group, rank, bucket) -> standard-free matrix contributions.
  // Degenerate records never reach a cell, so every contribution has a
  // positive avg_duration.
  struct CellSums {
    double weight_over_avg = 0.0;  ///< sum of count/avg_duration
    double weight = 0.0;           ///< sum of count for those records
  };
  using CellKey = std::tuple<int, int, int, int>;

  /// The complete mutable state of the detector, as plain data. Snapshots
  /// feed the checkpoint serializer (runtime/checkpoint.hpp); restoring a
  /// snapshot and re-folding the same suffix of batches reproduces the
  /// uninterrupted detector bit for bit — every field here is either an
  /// exact integer or a double carried through byte-exact serialization.
  struct Snapshot {
    std::map<std::pair<int, int>, double> standard;
    std::map<std::tuple<int, int, int>, double> rank_standard;
    std::map<CellKey, CellSums> cells;
    std::vector<RunningStats> stats;
    std::vector<uint64_t> sensor_records;
    std::map<std::pair<int, int>, LastSlice> last;
    std::set<int> stale;
    uint64_t observed = 0;
    uint64_t stale_records = 0;
    uint64_t degenerate_records = 0;
    uint64_t intra_flags = 0;
    uint64_t inter_flags = 0;
  };
  Snapshot snapshot() const;

  /// Merge two snapshots taken over disjoint rank partitions of one run
  /// (the sharded tier's reduction step). Rank-keyed state (cells, rank
  /// standards, last slices, stale sets) is a disjoint union, standards
  /// fold by min, integer counters sum, and Welford statistics combine via
  /// Chan's parallel formula (algebraically exact; the only field whose
  /// floating-point result can differ from the sequential fold order).
  static Snapshot merge_snapshots(const Snapshot& a, const Snapshot& b);

  /// Replace the running state with `snap` (recovery). The snapshot must
  /// come from a detector with the same sensor table.
  void restore(const Snapshot& snap);

  /// Drop all running state (a server crash destroys the in-memory
  /// detector; recovery then restores a snapshot and replays the journal).
  void reset();

 private:
  int group_of(float metric) const;
  int bucket_of(double time) const;

  DetectorConfig cfg_;
  std::vector<SensorInfo> sensors_;
  int ranks_;
  double run_time_;
  int buckets_;

  mutable std::mutex mu_;
  std::map<std::pair<int, int>, double> standard_;  ///< (sensor, group) -> min
  std::map<std::tuple<int, int, int>, double> rank_standard_;
  std::map<CellKey, CellSums> cells_;
  std::vector<RunningStats> stats_;         ///< per sensor id
  std::vector<uint64_t> sensor_records_;    ///< per sensor id
  std::map<std::pair<int, int>, LastSlice> last_;
  std::set<int> stale_;
  /// Publication queue (enable_standard_publication): (sensor, group) keys
  /// whose standard a folded record inserted or lowered. Transient routing
  /// state — never part of Snapshot; a recovering shard repopulates it by
  /// replaying its journal and re-broadcasts (idempotent min-folds).
  bool publish_standards_ = false;
  std::set<std::pair<int, int>> lowered_;
  uint64_t observed_ = 0;
  uint64_t stale_records_ = 0;
  uint64_t degenerate_records_ = 0;
  uint64_t intra_flags_ = 0;
  uint64_t inter_flags_ = 0;
  /// Health plane (non-owning; disengaged = one branch per flag site).
  obs::EventHooks hooks_;
};

}  // namespace vsensor::rt
