// Variance detection over collected slice records (paper §5.2-§5.5):
// fastest-record normalization, dynamic-rule grouping, intra-process
// history comparison, and inter-process matrix analysis with event
// extraction and root-cause classification.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "runtime/collector.hpp"
#include "runtime/matrix.hpp"
#include "runtime/types.hpp"

namespace vsensor::rt {

/// Smallest admissible standard time. A slice whose avg_duration falls
/// below this (notably the literal 0.0 of a broken measurement) is
/// *degenerate*: it must neither normalize to 1.0 (a zero-duration slice
/// reported as perfect) nor become its group's standard time (a zero
/// standard zeroes every normalized score in the group). Degenerate
/// records are excluded from standards, matrices, and flagging; standard
/// times are clamped to at least this value as a second line of defense.
inline constexpr double kMinStandardTime = 1e-12;

/// True for records too short to be a meaningful measurement.
inline bool is_degenerate(const SliceRecord& rec) {
  return !(rec.avg_duration >= kMinStandardTime);
}

struct DetectorConfig {
  /// Time-bucket width of performance matrices (paper Fig 14: 200 ms).
  double matrix_resolution = 0.2;
  /// Cells with normalized performance below this are variance cells
  /// ("white means the performance is only half of the best").
  double variance_threshold = 0.7;
  /// Dynamic-rule grouping: records of one sensor whose metric falls into
  /// the same bucket of this width share a standard time (§5.3, Fig 13).
  /// Zero turns dynamic rules off.
  double metric_bucket_width = 0.0;
  /// Ignore sensors with fewer records than this (not enough history).
  uint32_t min_records = 3;
  /// Events smaller than this many cells are dropped as noise speckle.
  uint32_t min_event_cells = 2;
  /// Events of the same type with overlapping rank ranges separated by at
  /// most this many empty time buckets are merged into one region (sensor
  /// records can be sparse in time, fragmenting one episode).
  int merge_gap_buckets = 8;
};

/// One detected variance region: a component, a time range, a rank range,
/// and its severity (mean normalized performance inside the region).
struct VarianceEvent {
  SensorType type = SensorType::Computation;
  double t_begin = 0.0;
  double t_end = 0.0;
  int rank_begin = 0;
  int rank_end = 0;  ///< inclusive
  double severity = 1.0;
  uint32_t cells = 0;
  /// Set on Network events that mirror a Computation event on *other*
  /// ranks: a collective's duration on healthy ranks includes the wait for
  /// slow ranks, so the network sensors there report the victims, not the
  /// culprit. The classifier points back at the compute problem.
  bool likely_wait_on_slow_ranks = false;

  /// Root-cause hint derived from the event's shape (paper §5.5): a
  /// full-duration narrow rank band suggests a bad node; a wide transient
  /// band suggests injected noise / network degradation.
  std::string classify(double run_time, int total_ranks) const;
  std::string describe(double run_time, int total_ranks) const;
};

/// One record flagged by intra-process history comparison (Fig 13).
struct FlaggedRecord {
  SliceRecord record;
  double normalized = 1.0;  ///< standard_time / avg_duration
  int group = 0;            ///< dynamic-rule group the record belongs to
};

struct AnalysisResult {
  std::array<PerformanceMatrix, kSensorTypeCount> matrices;
  std::vector<VarianceEvent> events;
  std::vector<FlaggedRecord> flagged;
  double run_time = 0.0;
  int ranks = 0;
  /// Ranks excluded from the analysis because their batch deliveries died
  /// mid-run (streaming path; empty rows there are absence, not speed).
  std::vector<int> stale_ranks;

  const PerformanceMatrix& matrix(SensorType t) const {
    return matrices[static_cast<size_t>(t)];
  }
};

class Detector {
 public:
  explicit Detector(DetectorConfig cfg = {});

  /// Full analysis of a finished run: builds per-type matrices, flags
  /// records against per-(sensor, group) standard times, and extracts
  /// variance events from the matrices.
  AnalysisResult analyze(const Collector& collector, int ranks,
                         double run_time) const;

  /// On-line analysis over the records collected so far: considers only
  /// records that completed by `horizon`. The paper updates its report
  /// periodically during the run ("users can notice performance variance
  /// without waiting for a program to finish", §2).
  AnalysisResult analyze_until(const Collector& collector, int ranks,
                               double horizon) const;

  /// Core entry: analysis over an explicit record set. Converts once to
  /// struct-of-arrays and runs analyze_batch.
  AnalysisResult analyze_records(std::span<const SliceRecord> records,
                                 const std::vector<SensorInfo>& sensors,
                                 int ranks, double run_time) const;

  /// Struct-of-arrays analysis — the vectorized core. Standards come from
  /// contiguous column scans (flat per-sensor arrays when dynamic rules
  /// are off, the default), and the per-record normalization is one SIMD
  /// divide pass (support/simd.hpp). Results are bit-identical to the
  /// historical per-record path: min/max/divide are exactly rounded and
  /// the accumulation order over records is preserved.
  AnalysisResult analyze_batch(const RecordBatch& records,
                               const std::vector<SensorInfo>& sensors,
                               int ranks, double run_time) const;

  /// §5.2 data merging: all sensors of one component type represent the
  /// same system resource, so their normalized records merge into a single
  /// time series at a finer resolution than any one sensor provides
  /// ("after data merging, we can analyze the network performance per
  /// 100us"). Buckets with no observation carry perf = -1.
  struct SeriesPoint {
    double t = 0.0;
    double perf = -1.0;   ///< mean normalized performance, -1 = no data
    uint32_t samples = 0;
  };
  std::vector<SeriesPoint> component_series(const Collector& collector,
                                            SensorType type, double resolution,
                                            double run_time) const;

  /// Intra-process detection over one sensor's records, exactly the paper's
  /// Fig 13 procedure. Returns the normalized performance of each record
  /// (order preserved); records below the variance threshold are flagged.
  /// Degenerate records (see is_degenerate) neither contribute to standard
  /// times nor score 1.0 — they come back as 0.0, pinned broken, not perfect.
  std::vector<double> normalize_records(std::span<const SliceRecord> records) const;

  const DetectorConfig& config() const { return cfg_; }

 private:
  int group_of(float metric) const;

  DetectorConfig cfg_;
};

/// Shared tail of the analysis pipeline, used by both the batch Detector
/// and the StreamingDetector so they produce identical variance regions:
/// finalizes the accumulated matrices, extracts and merges events,
/// cross-references Network events against Computation events, and sorts
/// events most-severe-first.
void finalize_analysis(AnalysisResult& result, const DetectorConfig& cfg);

/// Extract rectangular variance events from a finalized matrix via
/// connected-component clustering of below-threshold cells.
std::vector<VarianceEvent> extract_events(const PerformanceMatrix& matrix,
                                          SensorType type, double threshold,
                                          uint32_t min_cells);

/// Merge same-type events whose rank ranges overlap and whose time ranges
/// are within `gap_seconds` of each other. Returns merged events.
std::vector<VarianceEvent> merge_events(std::vector<VarianceEvent> events,
                                        double gap_seconds);

/// Graceful degradation under transport failure: drop the records of ranks
/// the transport reported stale (their delivery stream died mid-run), so a
/// batch analysis covers exactly the ranks the streaming detector still
/// trusts instead of letting a half-delivered history skew the matrices.
std::vector<SliceRecord> drop_stale_ranks(std::span<const SliceRecord> records,
                                          std::span<const int> stale_ranks);

}  // namespace vsensor::rt
