#include "runtime/session_io.hpp"

#include <fstream>
#include <sstream>

#include "obs/obs.hpp"
#include "support/error.hpp"

namespace vsensor::rt {

namespace {
constexpr const char* kMagic = "vsensor-session";
constexpr int kVersion = 2;
// Version 1 lacked the transport/stale lines; still loadable.
constexpr int kOldestSupported = 1;

void write_header(std::ostream& out, int ranks, double run_time,
                  const std::vector<SensorInfo>& sensors) {
  out << kMagic << ' ' << kVersion << '\n';
  out << "ranks " << ranks << " run_time " << run_time << '\n';
  for (size_t i = 0; i < sensors.size(); ++i) {
    const auto& s = sensors[i];
    out << "sensor " << i << ' ' << static_cast<int>(s.type) << ' ' << s.line
        << ' ' << s.file << ' ' << s.name << '\n';
  }
  out.precision(17);
}

void write_record(std::ostream& out, const SliceRecord& r) {
  out << "record " << r.sensor_id << ' ' << r.rank << ' ' << r.t_begin << ' '
      << r.t_end << ' ' << r.avg_duration << ' ' << r.min_duration << ' '
      << r.count << ' ' << r.metric << ' ' << r.flags << '\n';
}

void write_transport(std::ostream& out,
                     std::span<const RankChannelStats> transport,
                     std::span<const int> stale_ranks) {
  for (size_t r = 0; r < transport.size(); ++r) {
    const auto& s = transport[r];
    out << "transport " << r << ' ' << s.batches_sent << ' '
        << s.batches_delivered << ' ' << s.batches_lost << ' '
        << s.records_delivered << ' ' << s.records_lost << ' ' << s.retries
        << ' ' << s.duplicates_suppressed << ' ' << s.delayed_batches << ' '
        << s.wire_bytes << ' ' << s.backoff_seconds << ' '
        << s.last_delivery_time << ' ' << s.next_seq << '\n';
  }
  for (int r : stale_ranks) out << "stale " << r << '\n';
}

void accumulate_totals(RankChannelStats& sum, const RankChannelStats& s) {
  sum.batches_sent += s.batches_sent;
  sum.batches_delivered += s.batches_delivered;
  sum.batches_lost += s.batches_lost;
  sum.records_delivered += s.records_delivered;
  sum.records_lost += s.records_lost;
  sum.retries += s.retries;
  sum.duplicates_suppressed += s.duplicates_suppressed;
  sum.delayed_batches += s.delayed_batches;
  sum.wire_bytes += s.wire_bytes;
  sum.backoff_seconds += s.backoff_seconds;
  sum.last_delivery_time = std::max(sum.last_delivery_time, s.last_delivery_time);
  sum.next_seq += s.next_seq;
}
}  // namespace

void save_session(std::ostream& out, const Session& session) {
  VS_OBS_SCOPED_STAGE(obs::Stage::Export);
  write_header(out, session.ranks, session.run_time, session.sensors);
  for (const auto& r : session.records) write_record(out, r);
  write_transport(out, session.transport, session.stale_ranks);
}

void save_session_file(const std::string& path, const Collector& collector,
                       int ranks, double run_time) {
  save_session_file(path, collector, ranks, run_time, {}, {});
}

void save_session_file(const std::string& path, const Collector& collector,
                       int ranks, double run_time,
                       std::span<const RankChannelStats> transport,
                       std::span<const int> stale_ranks) {
  VS_OBS_SCOPED_STAGE(obs::Stage::Export);
  std::ofstream out(path);
  if (!out) throw Error("cannot open session file for writing: " + path);
  // Stream the records straight out of the collector's shards (locked
  // view) instead of copying the full history into a Session first.
  write_header(out, ranks, run_time, collector.sensors());
  collector.visit_records([&out](std::span<const SliceRecord> seg) {
    for (const auto& r : seg) write_record(out, r);
  });
  write_transport(out, transport, stale_ranks);
  if (!out) throw Error("failed while writing session file: " + path);
}

Session load_session(std::istream& in) {
  Session session;
  std::string line;

  if (!std::getline(in, line)) throw Error("empty session file");
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    header >> magic >> version;
    if (magic != kMagic) throw Error("not a vsensor session file");
    if (version < kOldestSupported || version > kVersion) {
      throw Error("unsupported session version: " + std::to_string(version));
    }
  }

  if (!std::getline(in, line)) throw Error("session file truncated");
  {
    std::istringstream meta(line);
    std::string k1;
    std::string k2;
    meta >> k1 >> session.ranks >> k2 >> session.run_time;
    if (k1 != "ranks" || k2 != "run_time" || session.ranks <= 0) {
      throw Error("malformed session metadata line");
    }
  }

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "sensor") {
      size_t id = 0;
      int type = 0;
      SensorInfo info;
      ls >> id >> type >> info.line >> info.file;
      std::getline(ls, info.name);
      if (!info.name.empty() && info.name.front() == ' ') {
        info.name.erase(0, 1);
      }
      if (!ls || type < 0 || type >= kSensorTypeCount) {
        throw Error("malformed sensor line: " + line);
      }
      if (id != session.sensors.size()) {
        throw Error("sensor ids must be dense and in order");
      }
      info.type = static_cast<SensorType>(type);
      session.sensors.push_back(std::move(info));
    } else if (kind == "record") {
      SliceRecord r;
      ls >> r.sensor_id >> r.rank >> r.t_begin >> r.t_end >> r.avg_duration >>
          r.min_duration >> r.count >> r.metric >> r.flags;
      if (!ls) throw Error("malformed record line: " + line);
      if (r.sensor_id < 0 ||
          static_cast<size_t>(r.sensor_id) >= session.sensors.size()) {
        throw Error("record references unknown sensor: " + line);
      }
      session.records.push_back(r);
    } else if (kind == "transport") {
      size_t rank = 0;
      RankChannelStats s;
      ls >> rank >> s.batches_sent >> s.batches_delivered >> s.batches_lost >>
          s.records_delivered >> s.records_lost >> s.retries >>
          s.duplicates_suppressed >> s.delayed_batches >> s.wire_bytes >>
          s.backoff_seconds >> s.last_delivery_time >> s.next_seq;
      if (!ls || rank >= static_cast<size_t>(session.ranks)) {
        throw Error("malformed transport line: " + line);
      }
      if (rank != session.transport.size()) {
        throw Error("transport ranks must be dense and in order");
      }
      session.transport.push_back(s);
    } else if (kind == "stale") {
      int rank = -1;
      ls >> rank;
      if (!ls || rank < 0 || rank >= session.ranks) {
        throw Error("malformed stale line: " + line);
      }
      session.stale_ranks.push_back(rank);
    } else {
      throw Error("unknown session line kind: " + kind);
    }
  }
  // Totals are derived, never stored: recompute so they can't drift from
  // the per-rank lines.
  session.transport_totals = RankChannelStats{};
  for (const auto& s : session.transport) {
    accumulate_totals(session.transport_totals, s);
  }
  return session;
}

Session load_session_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open session file: " + path);
  return load_session(in);
}

}  // namespace vsensor::rt
