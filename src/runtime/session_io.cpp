#include "runtime/session_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/obs.hpp"
#include "support/crc32.hpp"
#include "support/error.hpp"

namespace vsensor::rt {

namespace {
constexpr const char* kMagic = "vsensor-session";
constexpr int kVersion = 3;
// Version 1 lacked the transport/stale lines; version 2 lacked the
// per-line CRC suffix. Both still load (with strict error behavior —
// salvage needs the CRCs to tell damage from data).
constexpr int kOldestSupported = 1;

// ` #xxxxxxxx`: CRC32 of the line content, appended to every line after
// the magic line in v3 files.
constexpr size_t kCrcSuffixLen = 10;

/// Write one line with its integrity suffix.
void emit(std::ostream& out, const std::string& line) {
  char suffix[kCrcSuffixLen + 1];
  std::snprintf(suffix, sizeof(suffix), " #%08x", crc32(line));
  out << line << suffix << '\n';
}

/// Strip and verify the v3 integrity suffix in place. Returns false when
/// the suffix is missing, malformed, or the CRC does not match.
bool strip_crc(std::string& line) {
  if (line.size() < kCrcSuffixLen) return false;
  const size_t cut = line.size() - kCrcSuffixLen;
  if (line[cut] != ' ' || line[cut + 1] != '#') return false;
  uint32_t want = 0;
  for (size_t i = cut + 2; i < line.size(); ++i) {
    const char c = line[i];
    uint32_t digit = 0;
    if (c >= '0' && c <= '9') digit = static_cast<uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<uint32_t>(c - 'a') + 10;
    else return false;
    want = (want << 4) | digit;
  }
  line.resize(cut);
  return crc32(line) == want;
}

template <typename Fn>
std::string render(Fn&& fn) {
  std::ostringstream ss;
  ss.precision(17);
  fn(ss);
  return ss.str();
}

void write_header(std::ostream& out, int ranks, double run_time,
                  const std::vector<SensorInfo>& sensors) {
  out << kMagic << ' ' << kVersion << '\n';
  emit(out, render([&](std::ostream& ss) {
         ss << "ranks " << ranks << " run_time " << run_time;
       }));
  for (size_t i = 0; i < sensors.size(); ++i) {
    const auto& s = sensors[i];
    emit(out, render([&](std::ostream& ss) {
           ss << "sensor " << i << ' ' << static_cast<int>(s.type) << ' '
              << s.line << ' ' << s.file << ' ' << s.name;
         }));
  }
}

void write_record(std::ostream& out, const SliceRecord& r) {
  emit(out, render([&](std::ostream& ss) {
         ss << "record " << r.sensor_id << ' ' << r.rank << ' ' << r.t_begin
            << ' ' << r.t_end << ' ' << r.avg_duration << ' '
            << r.min_duration << ' ' << r.count << ' ' << r.metric << ' '
            << r.flags;
       }));
}

void write_transport(std::ostream& out,
                     std::span<const RankChannelStats> transport,
                     std::span<const int> stale_ranks) {
  for (size_t r = 0; r < transport.size(); ++r) {
    const auto& s = transport[r];
    emit(out, render([&](std::ostream& ss) {
           ss << "transport " << r << ' ' << s.batches_sent << ' '
              << s.batches_delivered << ' ' << s.batches_lost << ' '
              << s.records_delivered << ' ' << s.records_lost << ' '
              << s.retries << ' ' << s.duplicates_suppressed << ' '
              << s.delayed_batches << ' ' << s.wire_bytes << ' '
              << s.backoff_seconds << ' ' << s.last_delivery_time << ' '
              << s.next_seq;
         }));
  }
  for (int r : stale_ranks) {
    emit(out, render([&](std::ostream& ss) { ss << "stale " << r; }));
  }
}

void accumulate_totals(RankChannelStats& sum, const RankChannelStats& s) {
  sum.batches_sent += s.batches_sent;
  sum.batches_delivered += s.batches_delivered;
  sum.batches_lost += s.batches_lost;
  sum.records_delivered += s.records_delivered;
  sum.records_lost += s.records_lost;
  sum.retries += s.retries;
  sum.duplicates_suppressed += s.duplicates_suppressed;
  sum.delayed_batches += s.delayed_batches;
  sum.wire_bytes += s.wire_bytes;
  sum.backoff_seconds += s.backoff_seconds;
  sum.last_delivery_time = std::max(sum.last_delivery_time, s.last_delivery_time);
  sum.next_seq += s.next_seq;
}

/// Parse the metadata line ("ranks <N> run_time <t>"). Returns false
/// (with *err set) instead of throwing, so the v3 path can salvage.
bool parse_meta(const std::string& line, Session* session, std::string* err) {
  std::istringstream meta(line);
  std::string k1;
  std::string k2;
  meta >> k1 >> session->ranks >> k2 >> session->run_time;
  if (k1 != "ranks" || k2 != "run_time" || session->ranks <= 0) {
    *err = "malformed session metadata line";
    return false;
  }
  return true;
}

/// Parse one body line into the session. Returns false with *err set on
/// any structural problem; never throws.
bool parse_line(const std::string& line, Session* session, std::string* err) {
  std::istringstream ls(line);
  std::string kind;
  ls >> kind;
  if (kind == "sensor") {
    size_t id = 0;
    int type = 0;
    SensorInfo info;
    ls >> id >> type >> info.line >> info.file;
    std::getline(ls, info.name);
    if (!info.name.empty() && info.name.front() == ' ') {
      info.name.erase(0, 1);
    }
    if (!ls || type < 0 || type >= kSensorTypeCount) {
      *err = "malformed sensor line: " + line;
      return false;
    }
    if (id != session->sensors.size()) {
      *err = "sensor ids must be dense and in order";
      return false;
    }
    info.type = static_cast<SensorType>(type);
    session->sensors.push_back(std::move(info));
  } else if (kind == "record") {
    SliceRecord r;
    ls >> r.sensor_id >> r.rank >> r.t_begin >> r.t_end >> r.avg_duration >>
        r.min_duration >> r.count >> r.metric >> r.flags;
    if (!ls) {
      *err = "malformed record line: " + line;
      return false;
    }
    if (r.sensor_id < 0 ||
        static_cast<size_t>(r.sensor_id) >= session->sensors.size()) {
      *err = "record references unknown sensor: " + line;
      return false;
    }
    session->records.push_back(r);
  } else if (kind == "transport") {
    size_t rank = 0;
    RankChannelStats s;
    ls >> rank >> s.batches_sent >> s.batches_delivered >> s.batches_lost >>
        s.records_delivered >> s.records_lost >> s.retries >>
        s.duplicates_suppressed >> s.delayed_batches >> s.wire_bytes >>
        s.backoff_seconds >> s.last_delivery_time >> s.next_seq;
    if (!ls || rank >= static_cast<size_t>(session->ranks)) {
      *err = "malformed transport line: " + line;
      return false;
    }
    if (rank != session->transport.size()) {
      *err = "transport ranks must be dense and in order";
      return false;
    }
    session->transport.push_back(s);
  } else if (kind == "stale") {
    int rank = -1;
    ls >> rank;
    if (!ls || rank < 0 || rank >= session->ranks) {
      *err = "malformed stale line: " + line;
      return false;
    }
    session->stale_ranks.push_back(rank);
  } else {
    *err = "unknown session line kind: " + kind;
    return false;
  }
  return true;
}
}  // namespace

void save_session(std::ostream& out, const Session& session) {
  VS_OBS_SCOPED_STAGE(obs::Stage::Export);
  write_header(out, session.ranks, session.run_time, session.sensors);
  for (const auto& r : session.records) write_record(out, r);
  write_transport(out, session.transport, session.stale_ranks);
}

void save_session_file(const std::string& path, const Collector& collector,
                       int ranks, double run_time) {
  save_session_file(path, collector, ranks, run_time, {}, {});
}

void save_session_file(const std::string& path, const Collector& collector,
                       int ranks, double run_time,
                       std::span<const RankChannelStats> transport,
                       std::span<const int> stale_ranks, io::Vfs* vfs) {
  VS_OBS_SCOPED_STAGE(obs::Stage::Export);
  std::string err;
  auto file = io::resolve(vfs).open_truncate(path, &err);
  if (file == nullptr) {
    throw Error(err.empty() ? "cannot open session file for writing: " + path
                            : err);
  }
  io::FileStreambuf buf(file.get());
  std::ostream out(&buf);
  // Stream the records straight out of the collector's shards (locked
  // view) instead of copying the full history into a Session first.
  write_header(out, ranks, run_time, collector.sensors());
  collector.visit_records([&out](std::span<const SliceRecord> seg) {
    for (const auto& r : seg) write_record(out, r);
  });
  write_transport(out, transport, stale_ranks);
  out.flush();
  if (buf.failed() || !out) {
    throw Error("failed while writing session file: " + path);
  }
}

Session load_session(std::istream& in) {
  Session session;
  std::string line;

  if (!std::getline(in, line)) throw Error("empty session file");
  int version = 0;
  {
    std::istringstream header(line);
    std::string magic;
    header >> magic >> version;
    if (magic != kMagic) throw Error("not a vsensor session file");
    if (version < kOldestSupported || version > kVersion) {
      throw Error("unsupported session version: " + std::to_string(version));
    }
  }
  const bool checked = version >= 3;

  // Salvage discipline (v3): the first damaged or malformed line ends the
  // load — everything before it is intact (CRC-verified), everything from
  // it on is dropped and counted, and the reason lands in warnings.
  // Legacy files (v1/v2) keep their original strict throw behavior.
  size_t line_no = 1;  // the magic line
  bool body_ok = true;
  auto fail = [&](std::istream& rest, const std::string& why) {
    session.warnings.push_back("line " + std::to_string(line_no) + ": " + why +
                               "; salvaged valid prefix");
    ++session.salvaged_lines;
    std::string dropped;
    while (std::getline(rest, dropped)) ++session.salvaged_lines;
    body_ok = false;
  };

  if (!std::getline(in, line)) {
    if (checked) {
      session.warnings.push_back("session file truncated before metadata");
      return session;
    }
    throw Error("session file truncated");
  }
  ++line_no;
  std::string err;
  if (checked && !strip_crc(line)) {
    fail(in, "metadata line torn or CRC mismatch");
  } else if (!parse_meta(line, &session, &err)) {
    if (!checked) throw Error(err);
    session.ranks = 0;  // drop the partial parse
    session.run_time = 0.0;
    fail(in, err);
  }

  while (body_ok && std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (checked && !strip_crc(line)) {
      fail(in, "line torn or CRC mismatch");
      break;
    }
    if (!parse_line(line, &session, &err)) {
      if (!checked) throw Error(err);
      fail(in, err);
      break;
    }
  }
  // Totals are derived, never stored: recompute so they can't drift from
  // the per-rank lines.
  session.transport_totals = RankChannelStats{};
  for (const auto& s : session.transport) {
    accumulate_totals(session.transport_totals, s);
  }
  return session;
}

Session load_session_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open session file: " + path);
  return load_session(in);
}

}  // namespace vsensor::rt
