#include "runtime/session_io.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace vsensor::rt {

namespace {
constexpr const char* kMagic = "vsensor-session";
constexpr int kVersion = 1;

void write_header(std::ostream& out, int ranks, double run_time,
                  const std::vector<SensorInfo>& sensors) {
  out << kMagic << ' ' << kVersion << '\n';
  out << "ranks " << ranks << " run_time " << run_time << '\n';
  for (size_t i = 0; i < sensors.size(); ++i) {
    const auto& s = sensors[i];
    out << "sensor " << i << ' ' << static_cast<int>(s.type) << ' ' << s.line
        << ' ' << s.file << ' ' << s.name << '\n';
  }
  out.precision(17);
}

void write_record(std::ostream& out, const SliceRecord& r) {
  out << "record " << r.sensor_id << ' ' << r.rank << ' ' << r.t_begin << ' '
      << r.t_end << ' ' << r.avg_duration << ' ' << r.min_duration << ' '
      << r.count << ' ' << r.metric << ' ' << r.flags << '\n';
}
}  // namespace

void save_session(std::ostream& out, const Session& session) {
  write_header(out, session.ranks, session.run_time, session.sensors);
  for (const auto& r : session.records) write_record(out, r);
}

void save_session_file(const std::string& path, const Collector& collector,
                       int ranks, double run_time) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open session file for writing: " + path);
  // Stream the records straight out of the collector's shards (locked
  // view) instead of copying the full history into a Session first.
  write_header(out, ranks, run_time, collector.sensors());
  collector.visit_records([&out](std::span<const SliceRecord> seg) {
    for (const auto& r : seg) write_record(out, r);
  });
  if (!out) throw Error("failed while writing session file: " + path);
}

Session load_session(std::istream& in) {
  Session session;
  std::string line;

  if (!std::getline(in, line)) throw Error("empty session file");
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    header >> magic >> version;
    if (magic != kMagic) throw Error("not a vsensor session file");
    if (version != kVersion) {
      throw Error("unsupported session version: " + std::to_string(version));
    }
  }

  if (!std::getline(in, line)) throw Error("session file truncated");
  {
    std::istringstream meta(line);
    std::string k1;
    std::string k2;
    meta >> k1 >> session.ranks >> k2 >> session.run_time;
    if (k1 != "ranks" || k2 != "run_time" || session.ranks <= 0) {
      throw Error("malformed session metadata line");
    }
  }

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "sensor") {
      size_t id = 0;
      int type = 0;
      SensorInfo info;
      ls >> id >> type >> info.line >> info.file;
      std::getline(ls, info.name);
      if (!info.name.empty() && info.name.front() == ' ') {
        info.name.erase(0, 1);
      }
      if (!ls || type < 0 || type >= kSensorTypeCount) {
        throw Error("malformed sensor line: " + line);
      }
      if (id != session.sensors.size()) {
        throw Error("sensor ids must be dense and in order");
      }
      info.type = static_cast<SensorType>(type);
      session.sensors.push_back(std::move(info));
    } else if (kind == "record") {
      SliceRecord r;
      ls >> r.sensor_id >> r.rank >> r.t_begin >> r.t_end >> r.avg_duration >>
          r.min_duration >> r.count >> r.metric >> r.flags;
      if (!ls) throw Error("malformed record line: " + line);
      if (r.sensor_id < 0 ||
          static_cast<size_t>(r.sensor_id) >= session.sensors.size()) {
        throw Error("record references unknown sensor: " + line);
      }
      session.records.push_back(r);
    } else {
      throw Error("unknown session line kind: " + kind);
    }
  }
  return session;
}

Session load_session_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open session file: " + path);
  return load_session(in);
}

}  // namespace vsensor::rt
