#include "runtime/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace vsensor::rt {

PerformanceMatrix::PerformanceMatrix(int ranks, int buckets, double resolution)
    : ranks_(ranks),
      buckets_(buckets),
      resolution_(resolution),
      sum_(static_cast<size_t>(ranks) * static_cast<size_t>(buckets), 0.0),
      weight_(static_cast<size_t>(ranks) * static_cast<size_t>(buckets), 0.0) {
  VS_CHECK_MSG(ranks > 0 && buckets > 0, "matrix must be non-empty");
  VS_CHECK_MSG(resolution > 0.0, "matrix resolution must be positive");
}

size_t PerformanceMatrix::index(int rank, int bucket) const {
  VS_CHECK(rank >= 0 && rank < ranks_ && bucket >= 0 && bucket < buckets_);
  return static_cast<size_t>(rank) * static_cast<size_t>(buckets_) +
         static_cast<size_t>(bucket);
}

void PerformanceMatrix::accumulate(int rank, int bucket, double value, double weight) {
  VS_CHECK_MSG(!finalized_, "accumulate after finalize");
  VS_CHECK_MSG(weight > 0.0, "weight must be positive");
  const size_t i = index(rank, bucket);
  sum_[i] += value * weight;
  weight_[i] += weight;
}

void PerformanceMatrix::finalize() {
  VS_CHECK_MSG(!finalized_, "finalize called twice");
  for (size_t i = 0; i < sum_.size(); ++i) {
    if (weight_[i] > 0.0) sum_[i] /= weight_[i];
  }
  finalized_ = true;
}

bool PerformanceMatrix::has(int rank, int bucket) const {
  return weight_[index(rank, bucket)] > 0.0;
}

double PerformanceMatrix::at(int rank, int bucket) const {
  VS_CHECK_MSG(finalized_, "read before finalize");
  return sum_[index(rank, bucket)];
}

double PerformanceMatrix::average() const {
  VS_CHECK_MSG(finalized_, "read before finalize");
  double total = 0.0;
  uint64_t n = 0;
  for (size_t i = 0; i < sum_.size(); ++i) {
    if (weight_[i] > 0.0) {
      total += sum_[i];
      ++n;
    }
  }
  return n ? total / static_cast<double>(n) : 1.0;
}

double PerformanceMatrix::fraction_below(double threshold) const {
  VS_CHECK_MSG(finalized_, "read before finalize");
  uint64_t low = 0;
  uint64_t n = 0;
  for (size_t i = 0; i < sum_.size(); ++i) {
    if (weight_[i] > 0.0) {
      ++n;
      if (sum_[i] < threshold) ++low;
    }
  }
  return n ? static_cast<double>(low) / static_cast<double>(n) : 0.0;
}

int PerformanceMatrix::bucket_of(double time) const {
  const int b = static_cast<int>(std::floor(time / resolution_));
  return std::clamp(b, 0, buckets_ - 1);
}

}  // namespace vsensor::rt
